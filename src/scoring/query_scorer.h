#ifndef STAR_SCORING_QUERY_SCORER_H_
#define STAR_SCORING_QUERY_SCORER_H_

#include <cstdint>
#include <memory_resource>
#include <unordered_map>
#include <vector>

#include "common/arena.h"
#include "common/deadline.h"
#include "graph/knowledge_graph.h"
#include "graph/label_index.h"
#include "query/query_graph.h"
#include "scoring/match_config.h"
#include "text/ensemble.h"

namespace star::scoring {

/// A node candidate with its online-computed matching score F_N.
struct ScoredCandidate {
  graph::NodeId node = graph::kInvalidNode;
  double score = 0.0;
};

/// Counters of bound-driven candidate retrieval (MatchConfig::
/// use_pruned_retrieval): how much of the retrieval union was skipped by
/// block/node score caps instead of being fully scored. Accumulated across
/// every pruned Candidates() / ScorePool() call of the scorer.
struct RetrievalStats {
  uint64_t blocks_considered = 0;   ///< postings blocks in cap order
  uint64_t blocks_skipped = 0;      ///< blocks never decoded (cap < theta)
  uint64_t nodes_considered = 0;    ///< posting entries / pool nodes seen
  uint64_t nodes_deduped = 0;       ///< entries already seen this query node
  uint64_t nodes_bound_skipped = 0; ///< dropped by a bound before scoring
  uint64_t nodes_scored = 0;        ///< entries handed to bulk scoring

  void Merge(const RetrievalStats& o) {
    blocks_considered += o.blocks_considered;
    blocks_skipped += o.blocks_skipped;
    nodes_considered += o.nodes_considered;
    nodes_deduped += o.nodes_deduped;
    nodes_bound_skipped += o.nodes_bound_skipped;
    nodes_scored += o.nodes_scored;
  }
};

/// Memoized candidate list type: pmr so per-query transient storage can
/// live on a request arena (common/arena.h). A default-constructed
/// CandidateList uses the global default resource, so code outside the
/// arena'd query path is unaffected.
using CandidateList = std::pmr::vector<ScoredCandidate>;

/// Per-query scoring session: binds one QueryGraph to one KnowledgeGraph
/// and computes every F_N / F_E *online* (the paper's central constraint —
/// no score is precomputed or indexed), memoizing within the query.
///
/// All algorithms (stark, stard, starjoin, graphTA, BP, brute force) score
/// through this class, so they optimize the identical objective.
///
/// Concurrency contract
/// --------------------
/// The scorer is owned and driven by ONE thread; its memo caches are
/// mutated on read, so arbitrary concurrent calls are NOT safe. Internal
/// parallelism is instead provided through two mechanisms, both of which
/// keep results bit-identical to serial execution:
///
///  1. Bulk scoring (ScoreNodesParallel, used by Candidates): worker
///     threads compute F_N with the pure, cache-free path and only READ
///     the node memo; the memo is then filled in one single-threaded
///     merge step after the workers join. MatchConfig::threads picks the
///     worker count (0 = auto via StarThreads(), 1 = serial).
///
///  2. Warmed read-only sections (WarmStarCaches): a caller precomputes
///     every memo a star search touches (candidate lists, candidate-score
///     maps, the dense per-edge relation table, max relation scores).
///     Afterwards NodeScore-free accessors — CandidateScore,
///     RelationScore, MaxRelationScore, MaxEdgeScore, EdgeScore,
///     PathDecay, and the Candidates getters for warmed nodes — perform
///     no mutation and are safe to call from multiple threads. This is
///     how the parallel stark/stard initialization paths run.
///
/// NodeScore, WalkBall, FirstWalkLength and PairEdgeScore always mutate
/// their memos and must stay on the owning thread.
class QueryScorer {
 public:
  /// `index` may be null, in which case candidate retrieval scans all of V
  /// (the paper's O(|V|) base case). All referenced objects must outlive
  /// the scorer. `arena`, when given, backs the scorer's per-query
  /// transient state (candidate lists, walk-ball scratch) — it must
  /// outlive the scorer and must not be Reset() while the scorer lives;
  /// null falls back to the global default resource.
  QueryScorer(const graph::KnowledgeGraph& g, const query::QueryGraph& q,
              const text::SimilarityEnsemble& ensemble,
              const MatchConfig& config,
              const graph::LabelIndex* index = nullptr,
              common::MonotonicArena* arena = nullptr);

  /// F_N(u, v): Eq. 1 score of mapping query node u to data node v.
  /// Wildcard nodes score `config.wildcard_node_score` for every v.
  double NodeScore(int query_node, graph::NodeId v) const;

  /// Candidate matches of query node u: nodes with F_N >= node_threshold,
  /// sorted by descending score, truncated to config.max_candidates.
  /// Computed lazily once per query node. When an index is attached,
  /// non-wildcard retrieval is index-backed (token/type postings), which
  /// defines the candidate semantics for *all* algorithms in the library.
  const CandidateList& Candidates(int query_node) const;

  /// Injects a precomputed candidate list for `query_node` (cross-query
  /// reuse): the list must be exactly what Candidates(query_node) would
  /// compute — same node attributes, config, graph and index — and must be
  /// COMPLETE (never a cancellation-truncated prefix). No-op if the list
  /// was already computed. Only the candidate memo is seeded; F_N score
  /// memos refill on demand with identical values, so every downstream
  /// read stays bit-identical to an unseeded run.
  void SeedCandidates(int query_node,
                      const std::vector<ScoredCandidate>& list) const;

  /// The retrieval pool of `query_node`: the node ids Candidates() would
  /// bulk-score, before any scoring or filtering (index-backed postings,
  /// typed-wildcard postings, or the full-scan iota). Pure — never touches
  /// the candidate memo. Sharded scatter calls this per shard (each shard
  /// index is rebuilt over the full node table, so every shard computes
  /// the identical pool) and intersects with its owned slice.
  std::vector<graph::NodeId> RetrievalPool(int query_node) const;

  /// The MatchConfig::sample_rate pool predicate: whether node v survives
  /// deterministic seeded sampling. Pure function of (seed, v, rate) —
  /// exposed so the serve layer's degradation certificate and tests can
  /// reproduce the sampled universe exactly.
  static bool SampleKeep(uint64_t seed, graph::NodeId v, double rate);

  /// Scores `pool` exactly as Candidates() would (bulk F_N at
  /// node_threshold) and returns the surviving entries in the canonical
  /// (score desc, node asc) order — WITHOUT max_candidates truncation and
  /// WITHOUT memoizing the result as the node's candidate list. Per-node
  /// scores are pure, so scoring a partition of the pool shard-by-shard
  /// and merging preserves every bit of the single-process list; the
  /// coordinator applies the max_candidates cut after the merge.
  std::vector<ScoredCandidate> ScorePool(
      int query_node, const std::vector<graph::NodeId>& pool) const;

  /// The memoized candidate list of `query_node` if it has been computed
  /// (or seeded) this session, nullptr otherwise. Never triggers
  /// computation. NOTE: a ready list can still be truncated when a
  /// cancellation fired mid-BulkScore — callers harvesting lists for a
  /// cross-query cache must first check that the whole run finished
  /// cleanly (truncated() is false).
  const CandidateList* CandidatesIfReady(int query_node) const;

  /// Membership score in Candidates(query_node): F_N if v is a candidate,
  /// -1 otherwise. O(1) after the first call per query node. Untyped
  /// wildcards short-circuit to the wildcard score (every node matches).
  double CandidateScore(int query_node, graph::NodeId v) const;

  /// Bulk F_N scoring: scores of mapping `query_node` to every node in
  /// `nodes`, index-aligned with the input. Scoring fans out across
  /// `threads` workers (chunked over the input range); workers use the
  /// pure compute path — the threshold-aware kernel in exact mode when
  /// config.use_scoring_kernel is set — and only READ the node memo; the
  /// memo is filled once, in a serial merge step after they join, so it
  /// ends up exactly as if NodeScore had been called serially for each
  /// node. Deterministic for every thread count.
  std::vector<double> ScoreNodesParallel(int query_node,
                                         const std::vector<graph::NodeId>& nodes,
                                         int threads) const;

  /// Precomputes every memo a star search over (pivot, edges, leaves)
  /// touches: Candidates + candidate-score maps for the pivot and each
  /// non-wildcard leaf (untyped wildcard leaves never build lists — same
  /// as the serial paths), the dense relation table and max relation
  /// score per star edge. After this returns, CandidateScore /
  /// RelationScore / MaxEdgeScore / EdgeScore / PathDecay on the warmed
  /// ids are read-only and safe for concurrent calls (see class comment).
  void WarmStarCaches(int pivot, const std::vector<int>& edges,
                      const std::vector<int>& leaves) const;

  /// Relation-label similarity of mapping query edge e to a data edge with
  /// relation id `relation`. Wildcard query relations score 1.
  double RelationScore(int query_edge, uint32_t relation) const;

  /// Dense similarity table for a query edge: entry r is
  /// RelationScore(query_edge, r) for every relation id in the graph.
  /// Computed once; afterwards RelationScore is a pure array lookup
  /// (thread-safe). Empty for wildcard-relation edges (they score 1).
  const std::vector<double>& RelationScoresAll(int query_edge) const;

  /// F_E of a path/walk match of length `hops`: for hops == 1 the relation
  /// similarity of the direct edge; for hops >= 2 the pure geometric decay
  /// lambda^(hops-1) (the paper's §V-B example F = lambda^(h-1)). This
  /// form is symmetric in the two endpoints, so a query edge scores the
  /// same regardless of which endpoint a decomposition picks as pivot.
  double EdgeScore(int query_edge, uint32_t direct_relation, int hops) const;

  /// Pure multi-hop decay component lambda^(hops-1).
  double PathDecay(int hops) const;

  /// Largest achievable RelationScore for this query edge over all
  /// relations present in the graph (1 for wildcard edges). Used for
  /// upper bounds.
  double MaxRelationScore(int query_edge) const;

  /// Largest achievable F_E for the edge under the configured d.
  double MaxEdgeScore(int query_edge) const;

  /// Full pairwise F_E of mapping query edge e to the node pair (a, b):
  /// the max of direct-edge relation similarity and the multi-hop decay of
  /// the shortest walk (length in [2, d]) connecting them; entries below
  /// edge_threshold don't count. Returns -1 when a and b have no valid
  /// connection. Symmetric in (a, b). Memoized; used by the baselines
  /// (graphTA expansion, BP pairwise potentials, brute force).
  double PairEdgeScore(int query_edge, graph::NodeId a, graph::NodeId b) const;

  /// Smallest walk length in [2, d] from a to b (0 if none). Memoized per
  /// source node — this doubles as graphTA's "neighbor cache".
  int FirstWalkLength(graph::NodeId a, graph::NodeId b) const;

  /// All nodes reachable from `a` by a walk of length in [2, d], mapped to
  /// their smallest such length. The returned reference is owned by a
  /// bounded memo; it is invalidated by the next WalkBall call. Empty when
  /// d < 2.
  const std::unordered_map<graph::NodeId, int>& WalkBall(graph::NodeId a) const;

  /// Perfect-match upper bound of a full query match: one per node (1.0 or
  /// the wildcard score) plus MaxEdgeScore per edge.
  double ScoreUpperBound() const;

  const graph::KnowledgeGraph& graph() const { return graph_; }
  const query::QueryGraph& query() const { return query_; }
  const MatchConfig& config() const { return config_; }
  const graph::LabelIndex* index() const { return index_; }

  /// Attaches a cooperative cancellation token (nullable; must outlive
  /// the scorer's use). The bulk scoring paths (Candidates / BulkScore)
  /// poll it and wind down early once it fires: candidate lists built
  /// after that point may be truncated — but never contain a wrong score —
  /// and every such wind-down sets the sticky truncated() flag so the run
  /// reports itself partial instead of posing as complete. Cached exact
  /// scores are never polluted by a cancellation (skipped entries are left
  /// out of the memo, not guessed).
  void set_cancellation(const Cancellation* cancel) { cancel_ = cancel; }

  /// True once any cancellation checkpoint fired inside this scorer — some
  /// candidate list or bulk-score result may be truncated. Monotone and
  /// sticky; owning-thread read (parallel workers report through per-chunk
  /// flags that are merged serially after the join). StarFramework folds
  /// this into FrameworkStats.cancelled so a truncated run can never be
  /// reported as a complete answer even when the engine's own amortized
  /// checkpoints all missed the expiry.
  bool truncated() const { return truncated_; }

  /// Number of F_N evaluations performed (diagnostic for benches).
  size_t node_score_evaluations() const { return node_evals_; }

  /// Scoring-kernel counters accumulated across every kernel evaluation
  /// this scorer performed (empty when config.use_scoring_kernel is off).
  /// Owning-thread read; bulk scoring merges per-worker counters in the
  /// serial step after the workers join.
  const text::KernelStats& kernel_stats() const { return kernel_stats_; }

  /// Bound-driven retrieval counters (empty when use_pruned_retrieval is
  /// off or only wildcard nodes were retrieved). Owning-thread read.
  const RetrievalStats& retrieval_stats() const { return retrieval_stats_; }

  /// Memory resource backing the scorer's per-query transient state (the
  /// request arena when one was given, else the default resource). Engine
  /// code may place OWNING-THREAD transient containers here — never
  /// buffers allocated from pool workers: the arena is single-threaded
  /// (see common/arena.h).
  std::pmr::memory_resource* transient_resource() const { return mem_; }

 private:
  /// Ontology type id for a type name (-1 if no ontology / unknown).
  int OntologyType(std::string_view type_name) const;

  /// Pure F_N computation (Eq. 1) for a non-wildcard query node: no memo
  /// access, no counters — safe to call from any thread (the ensemble
  /// keeps its scratch buffers thread_local). Uses the prepared-label
  /// kernel in exact mode when config.use_scoring_kernel is set.
  double ComputeNodeScore(int query_node, graph::NodeId v) const;

  /// Threshold-aware F_N (the scoring kernel): exact for results >=
  /// threshold, a sub-threshold upper bound otherwise (threshold < 0 =
  /// exact mode). Pure except for `stats`, which the caller owns — pass a
  /// per-worker instance from parallel sections.
  double ComputeNodeScore(int query_node, graph::NodeId v, double threshold,
                          text::KernelStats* stats) const;

  /// Shared core of ScoreNodesParallel / Candidates: bulk F_N against a
  /// candidate threshold. Entries < threshold may be truncated upper
  /// bounds; the serial merge step memoizes only exact (kept) scores.
  /// When config.use_batch_kernel is set (and the scoring kernel is on),
  /// each worker chunk runs through the batched SoA kernel via
  /// ScoreChunkBatched — results are bit-identical either way.
  std::vector<double> BulkScore(int query_node,
                                const std::vector<graph::NodeId>& nodes,
                                int threads, double threshold) const;

  // --- Bound-driven retrieval (MatchConfig::use_pruned_retrieval) ---
  //
  // Candidates() for a non-wildcard query node runs one of two pruned
  // paths instead of score-everything-then-truncate. Both maintain the
  // candidate top list as a bounded heap on the total order (score desc,
  // node asc) whose running max_candidates-th score is the threshold
  // theta, score survivors in deterministic fixed-size waves through
  // BulkScore (so thread count never changes which nodes are scored at
  // which theta), and produce lists bitwise identical to the unpruned
  // path — see DESIGN.md "Bound-driven retrieval" for the soundness and
  // tie-safety argument.

  /// Index-backed path (index attached, no max_retrieval cap): walks the
  /// postings blocks of RetrievalLists in descending RetrievalBlockBound
  /// order, stops outright once the best remaining cap is below theta,
  /// dedups members through the epoch-stamped seen-mark array, and
  /// bound-filters single nodes before waving them into BulkScore.
  void PrunedRetrieveBlocks(int query_node, CandidateList* out) const;

  /// Pool path (no index, or a RankedCandidates-capped pool): sorts the
  /// pool by per-node RetrievalNodeBound (cap desc, id asc) and stops at
  /// the first node whose cap cannot reach theta.
  void PrunedRetrievePool(int query_node,
                          const std::vector<graph::NodeId>& pool,
                          CandidateList* out) const;

  /// The current pruning threshold: the heap's worst kept score once it
  /// holds max_candidates entries, node_threshold before that (and always,
  /// when max_candidates is 0).
  double RetrievalTheta(const CandidateList& heap) const;

  /// Folds one scored wave into the bounded heap (entries below
  /// node_threshold are dropped; sub-threshold kernel bounds never enter).
  void MergeScoredWave(const std::vector<graph::NodeId>& wave,
                       const std::vector<double>& scores,
                       CandidateList* heap) const;

  /// One worker chunk of BulkScore on the batched kernel: gathers memo
  /// misses into kBatchLanes-wide lanes, elides duplicate (label, type)
  /// pairs within the chunk (the kernel is deterministic, so the copied
  /// score is exact), and scores each full batch in one
  /// ScoreBatchAgainstThreshold call. Reads the node memo, writes only
  /// this chunk's scores/miss entries and its own stats/cancel slots —
  /// the same data contract as the scalar chunk loop.
  void ScoreChunkBatched(int query_node,
                         const std::vector<graph::NodeId>& nodes, size_t lo,
                         size_t hi, double threshold, text::KernelStats* stats,
                         CancelChecker* cancel_check,
                         std::vector<double>* scores,
                         std::vector<uint8_t>* miss,
                         uint8_t* chunk_cancelled) const;

  const graph::KnowledgeGraph& graph_;
  const query::QueryGraph& query_;
  const text::SimilarityEnsemble& ensemble_;
  MatchConfig config_;
  const graph::LabelIndex* index_;
  const Cancellation* cancel_ = nullptr;
  // Resource for per-query transient state; declared before every pmr
  // member so their constructors can bind to it. Never null.
  std::pmr::memory_resource* mem_;

  // Ontology ids resolved once: per query node and per graph type id.
  std::vector<int> query_node_onto_type_;
  std::vector<int> graph_type_onto_type_;
  // Derived-view reuse across query nodes (per-query scope). F_N and
  // candidate retrieval are pure functions of a query node's attribute
  // signature (wildcard flag, type name, label text) plus immutable
  // graph/config state, so nodes sharing a signature alias one
  // representative's memos: node_rep_[u] is the first query node with u's
  // signature, and every node-level memo below (F_N cache, candidate
  // lists, candidate-score maps) is indexed through it. Likewise
  // edge_rep_[e] aliases relation-similarity memos by (wildcard, relation
  // label), and prepared_idx_[u] dedupes kernel views by label text —
  // each view is built, and each postings list decoded, once per query
  // rather than once per query node. Aliased reads are bitwise identical
  // to unaliased ones, so results are unchanged.
  std::vector<int> node_rep_;
  std::vector<int> edge_rep_;
  std::vector<uint32_t> prepared_idx_;
  // Query-side kernel views, one per UNIQUE query label, built eagerly in
  // the constructor (immutable afterwards, so worker threads share them).
  // The batched view embeds the scalar PreparedLabel, so both kernels
  // share one build. Indexed through prepared_idx_.
  std::vector<text::SimilarityEnsemble::PreparedLabelBatch> prepared_store_;
  // For typed wildcard query nodes: the required graph type id (-1 = none
  // matches / untyped wildcard).
  std::vector<int32_t> wildcard_graph_type_;

  // Memoization: per query node, data-node -> F_N; per query edge,
  // relation -> similarity; candidate lists per query node.
  mutable std::vector<std::unordered_map<graph::NodeId, double>> node_cache_;
  mutable std::vector<std::unordered_map<uint32_t, double>> relation_cache_;
  mutable std::vector<CandidateList> candidates_;
  mutable std::vector<bool> candidates_ready_;
  mutable std::vector<std::unordered_map<graph::NodeId, double>>
      candidate_score_map_;
  mutable std::vector<bool> candidate_map_ready_;
  mutable std::vector<double> max_relation_score_;
  mutable std::vector<bool> max_relation_ready_;
  // Dense per-edge relation-similarity tables (RelationScoresAll).
  mutable std::vector<std::vector<double>> relation_table_;
  mutable std::vector<bool> relation_table_ready_;
  // Walk-ball memo: node -> (reachable node -> smallest walk length in
  // [2, d]). Bounded: once the stored pair count passes kWalkBallCacheLimit
  // the cache is dropped and rebuilt on demand (d-balls of hub-adjacent
  // nodes can cover much of the graph).
  static constexpr size_t kWalkBallCacheLimit = 4'000'000;
  mutable std::unordered_map<graph::NodeId,
                             std::unordered_map<graph::NodeId, int>>
      walk_ball_cache_;
  mutable size_t walk_ball_pairs_ = 0;
  // WalkBall traversal scratch: epoch-stamped per-node marks (|V| flat
  // array, one epoch per BFS layer — no per-call hash maps) and the two
  // frontier buffers. Owning-thread only, like WalkBall itself.
  mutable std::pmr::vector<uint32_t> walk_mark_;
  mutable uint32_t walk_epoch_ = 0;
  mutable std::pmr::vector<graph::NodeId> walk_layer_;
  mutable std::pmr::vector<graph::NodeId> walk_next_;
  mutable std::vector<std::unordered_map<uint64_t, double>> pair_edge_cache_;
  // Retrieval dedup scratch: epoch-stamped per-node marks (|V| flat array,
  // one epoch per pruned retrieval — the walk_mark_ pattern). Owning-thread
  // only, like Candidates() itself.
  mutable std::pmr::vector<uint32_t> seen_mark_;
  mutable uint32_t seen_epoch_ = 0;
  mutable size_t node_evals_ = 0;
  mutable text::KernelStats kernel_stats_;
  mutable RetrievalStats retrieval_stats_;
  // Sticky truncation flag (see truncated()); written only on the owning
  // thread — parallel sections report via per-chunk flags merged serially.
  mutable bool truncated_ = false;
};

}  // namespace star::scoring

#endif  // STAR_SCORING_QUERY_SCORER_H_
