#include "scoring/query_scorer.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <numeric>
#include <string_view>
#include <tuple>
#include <utility>

#include "common/thread_pool.h"

namespace star::scoring {

using graph::KnowledgeGraph;
using graph::LabelIndex;
using graph::NodeId;
using query::QueryGraph;
using text::SimilarityEnsemble;

namespace {

/// Skip margin of the retrieval bounds — the kernel's standard 1e-9: a
/// block/node is skipped only when its cap is strictly below theta by more
/// than the margin, so sub-ulp rounding of the cap arithmetic can never
/// drop an entry whose canonical score ties the cut.
constexpr double kBoundMargin = 1e-9;

/// Nodes scored per retrieval wave. Wave boundaries are where theta
/// updates, and membership is decided by the deterministic block/pool
/// order alone — never by thread count — so pruned retrieval is
/// bit-identical at any MatchConfig::threads. One postings block per
/// wave: theta tightens as soon as the highest-cap block has been scored,
/// which is what lets duplicate-heavy exact matches shut down the rest of
/// the union.
constexpr size_t kRetrievalWave = graph::LabelIndex::kRetrievalBlockSize;

/// The candidate total order (score desc, node asc) — the same comparator
/// the unpruned path sorts with.
inline bool BetterCandidate(const ScoredCandidate& a,
                            const ScoredCandidate& b) {
  return a.score > b.score || (a.score == b.score && a.node < b.node);
}

}  // namespace

QueryScorer::QueryScorer(const KnowledgeGraph& g, const QueryGraph& q,
                         const SimilarityEnsemble& ensemble,
                         const MatchConfig& config, const LabelIndex* index,
                         common::MonotonicArena* arena)
    : graph_(g),
      query_(q),
      ensemble_(ensemble),
      config_(config),
      index_(index),
      mem_(arena != nullptr ? arena->resource()
                            : std::pmr::get_default_resource()),
      node_cache_(q.node_count()),
      relation_cache_(q.edge_count()),
      candidates_ready_(q.node_count(), false),
      max_relation_score_(q.edge_count(), 1.0),
      max_relation_ready_(q.edge_count(), false),
      relation_table_(q.edge_count()),
      relation_table_ready_(q.edge_count(), false),
      walk_mark_(mem_),
      walk_layer_(mem_),
      walk_next_(mem_),
      seen_mark_(mem_) {
  // Candidate lists bind to the transient resource individually:
  // fill-construction would copy-construct elements, and pmr container
  // copies take the DEFAULT resource, silently dropping the arena.
  candidates_.reserve(q.node_count());
  for (int u = 0; u < q.node_count(); ++u) candidates_.emplace_back(mem_);
  // Resolve type names into the ensemble's ontology once.
  query_node_onto_type_.resize(q.node_count(), -1);
  for (int u = 0; u < q.node_count(); ++u) {
    query_node_onto_type_[u] = OntologyType(q.node(u).type_name);
  }
  graph_type_onto_type_.resize(g.type_count(), -1);
  for (size_t t = 0; t < g.type_count(); ++t) {
    graph_type_onto_type_[t] =
        OntologyType(g.TypeName(static_cast<int32_t>(t)));
  }
  wildcard_graph_type_.resize(q.node_count(), -1);
  for (int u = 0; u < q.node_count(); ++u) {
    const auto& qn = q.node(u);
    if (qn.wildcard && !qn.type_name.empty()) {
      wildcard_graph_type_[u] = g.FindTypeId(qn.type_name);
    }
  }
  // Derived-view reuse: collapse query nodes onto signature
  // representatives and dedupe kernel views by label, so repeated
  // labels/types across query nodes build each derived view once.
  std::map<std::tuple<bool, std::string_view, std::string_view>, int>
      node_sig;
  node_rep_.resize(q.node_count());
  for (int u = 0; u < q.node_count(); ++u) {
    const auto& qn = q.node(u);
    const auto [it, inserted] = node_sig.try_emplace(
        std::make_tuple(qn.wildcard, std::string_view(qn.type_name),
                        std::string_view(qn.label)),
        u);
    node_rep_[u] = it->second;
  }
  std::map<std::pair<bool, std::string_view>, int> edge_sig;
  edge_rep_.resize(q.edge_count());
  for (int e = 0; e < q.edge_count(); ++e) {
    const auto& qe = q.edge(e);
    const auto [it, inserted] = edge_sig.try_emplace(
        std::make_pair(qe.wildcard_relation, std::string_view(qe.relation)),
        e);
    edge_rep_[e] = it->second;
  }
  // Build the kernel's query-side views eagerly (one per unique query
  // label) so they are immutable before any parallel section can share
  // them. The batched view embeds the scalar PreparedLabel, so one build
  // serves both kernels.
  std::map<std::string_view, uint32_t> label_view;
  prepared_idx_.resize(q.node_count());
  for (int u = 0; u < q.node_count(); ++u) {
    const std::string_view label = q.node(u).label;
    const auto it = label_view.find(label);
    if (it != label_view.end()) {
      prepared_idx_[u] = it->second;
      continue;
    }
    const uint32_t idx = static_cast<uint32_t>(prepared_store_.size());
    prepared_store_.push_back(ensemble_.PrepareBatch(label));
    prepared_idx_[u] = idx;
    label_view.emplace(label, idx);
  }
}

int QueryScorer::OntologyType(std::string_view type_name) const {
  if (type_name.empty() || ensemble_.context().ontology == nullptr) return -1;
  return ensemble_.context().ontology->FindType(type_name);
}

double QueryScorer::NodeScore(int query_node, NodeId v) const {
  const query::QueryNode& qn = query_.node(query_node);
  if (qn.wildcard) {
    // Typed wildcards ("?x a Person") are a hard type filter; untyped
    // wildcards match everything.
    if (qn.type_name.empty()) return config_.wildcard_node_score;
    const int32_t want = wildcard_graph_type_[query_node];
    return (want >= 0 && graph_.NodeType(v) == want)
               ? config_.wildcard_node_score
               : 0.0;
  }
  auto& cache = node_cache_[node_rep_[query_node]];
  const auto it = cache.find(v);
  if (it != cache.end()) return it->second;
  ++node_evals_;
  const double s =
      config_.use_scoring_kernel
          ? ComputeNodeScore(query_node, v,
                             text::SimilarityEnsemble::kNoThreshold,
                             &kernel_stats_)
          : ComputeNodeScore(query_node, v);
  cache.emplace(v, s);
  return s;
}

double QueryScorer::ComputeNodeScore(int query_node, NodeId v) const {
  if (config_.use_scoring_kernel) {
    return ComputeNodeScore(query_node, v,
                            text::SimilarityEnsemble::kNoThreshold, nullptr);
  }
  const int32_t gt = graph_.NodeType(v);
  const int onto_data = gt >= 0 ? graph_type_onto_type_[gt] : -1;
  return ensemble_.Score(query_.node(query_node).label, graph_.NodeLabel(v),
                         query_node_onto_type_[query_node], onto_data);
}

double QueryScorer::ComputeNodeScore(int query_node, NodeId v, double threshold,
                                     text::KernelStats* stats) const {
  const int32_t gt = graph_.NodeType(v);
  const int onto_data = gt >= 0 ? graph_type_onto_type_[gt] : -1;
  return ensemble_.ScoreAgainstThreshold(
      prepared_store_[prepared_idx_[query_node]].prepared,
      graph_.NodeLabel(v), threshold, query_node_onto_type_[query_node],
      onto_data, stats);
}

void QueryScorer::ScoreChunkBatched(int query_node,
                                    const std::vector<graph::NodeId>& nodes,
                                    size_t lo, size_t hi, double threshold,
                                    text::KernelStats* stats,
                                    CancelChecker* cancel_check,
                                    std::vector<double>* scores,
                                    std::vector<uint8_t>* miss,
                                    uint8_t* chunk_cancelled) const {
  constexpr int kLanes = text::SimilarityEnsemble::kBatchLanes;
  const text::SimilarityEnsemble::PreparedLabelBatch& batch =
      prepared_store_[prepared_idx_[query_node]];
  const int query_type = query_node_onto_type_[query_node];
  const auto& cache = node_cache_[node_rep_[query_node]];

  // Duplicate-label elision within the chunk: generated and real graphs
  // repeat labels across nodes, and the kernel is a pure function of
  // (label, type, threshold), so a repeated pair reuses the first lane's
  // result bitwise. Keyed on the label bytes plus the ontology type id.
  struct SeenKey {
    std::string_view label;
    int type;
    bool operator==(const SeenKey&) const = default;
  };
  struct SeenKeyHash {
    size_t operator()(const SeenKey& k) const {
      return std::hash<std::string_view>{}(k.label) * 1000003u ^
             static_cast<size_t>(k.type + 2);
    }
  };
  std::unordered_map<SeenKey, double, SeenKeyHash> seen;

  std::string_view lane_labels[kLanes];
  int lane_types[kLanes];
  size_t lane_index[kLanes];
  size_t lanes = 0;
  const auto flush = [&] {
    if (lanes == 0) return;
    double out[kLanes];
    ensemble_.ScoreBatchAgainstThreshold(batch, lane_labels, lanes, threshold,
                                         query_type, lane_types, out, stats);
    for (size_t l = 0; l < lanes; ++l) {
      (*scores)[lane_index[l]] = out[l];
      // miss[] is only set here, after the score landed, so a
      // cancellation that drops gathered-but-unflushed lanes can never
      // let the merge step memoize an unscored 0.0.
      (*miss)[lane_index[l]] = 1;
      seen.emplace(SeenKey{lane_labels[l], lane_types[l]}, out[l]);
    }
    lanes = 0;
  };
  for (size_t i = lo; i < hi; ++i) {
    if (cancel_check->ShouldStop()) {
      *chunk_cancelled = 1;
      break;
    }
    const graph::NodeId v = nodes[i];
    const auto it = cache.find(v);
    if (it != cache.end()) {
      (*scores)[i] = it->second;
      continue;
    }
    const std::string_view label = graph_.NodeLabel(v);
    const int32_t gt = graph_.NodeType(v);
    const int data_type = gt >= 0 ? graph_type_onto_type_[gt] : -1;
    const auto dup = seen.find(SeenKey{label, data_type});
    if (dup != seen.end()) {
      (*scores)[i] = dup->second;
      (*miss)[i] = 1;
      continue;
    }
    lane_labels[lanes] = label;
    lane_types[lanes] = data_type;
    lane_index[lanes] = i;
    if (++lanes == kLanes) flush();
  }
  flush();
}

std::vector<double> QueryScorer::ScoreNodesParallel(
    int query_node, const std::vector<graph::NodeId>& nodes,
    int threads) const {
  return BulkScore(query_node, nodes, threads,
                   text::SimilarityEnsemble::kNoThreshold);
}

std::vector<double> QueryScorer::BulkScore(int query_node,
                                           const std::vector<graph::NodeId>& nodes,
                                           int threads,
                                           double threshold) const {
  std::vector<double> scores(nodes.size());
  const query::QueryNode& qn = query_.node(query_node);
  if (qn.wildcard) {
    // Wildcard scoring is pure (type check / constant), so workers may use
    // NodeScore directly — it never touches the memo for wildcards.
    std::vector<uint8_t> chunk_cancelled(
        static_cast<size_t>(std::max(threads, 1)), 0);
    ParallelFor(nodes.size(), threads, [&](size_t lo, size_t hi, int chunk) {
      CancelChecker cancel_check(cancel_);
      for (size_t i = lo; i < hi; ++i) {
        if (cancel_check.ShouldStop()) {  // rest stay 0 (non-candidates)
          chunk_cancelled[chunk] = 1;
          break;
        }
        scores[i] = NodeScore(query_node, nodes[i]);
      }
    });
    for (const uint8_t c : chunk_cancelled) {
      if (c) truncated_ = true;
    }
    return scores;
  }
  const bool kernel = config_.use_scoring_kernel;
  const bool batch_kernel = kernel && config_.use_batch_kernel;
  const bool thresholded = kernel && threshold >= 0.0;
  auto& cache = node_cache_[node_rep_[query_node]];
  std::vector<uint8_t> miss(nodes.size(), 0);
  // Kernel counters are per worker chunk (ParallelFor chunk ids are
  // always < threads) and merged serially after the join.
  std::vector<text::KernelStats> worker_stats(
      static_cast<size_t>(std::max(threads, 1)));
  std::vector<uint8_t> chunk_cancelled(worker_stats.size(), 0);
  ParallelFor(nodes.size(), threads, [&](size_t lo, size_t hi, int chunk) {
    text::KernelStats* ks = &worker_stats[chunk];
    CancelChecker cancel_check(cancel_);
    if (batch_kernel) {
      ScoreChunkBatched(query_node, nodes, lo, hi, threshold, ks,
                        &cancel_check, &scores, &miss,
                        &chunk_cancelled[chunk]);
      return;
    }
    for (size_t i = lo; i < hi; ++i) {
      // Cancellation leaves the rest of the chunk unscored: miss[] stays 0
      // for those entries, so the merge below never memoizes a guessed
      // score, and their 0.0 falls below any positive candidate threshold.
      if (cancel_check.ShouldStop()) {
        chunk_cancelled[chunk] = 1;
        break;
      }
      // The memo is read-only during the parallel section.
      const auto it = cache.find(nodes[i]);
      if (it != cache.end()) {
        scores[i] = it->second;
        continue;
      }
      miss[i] = 1;
      scores[i] = kernel ? ComputeNodeScore(query_node, nodes[i], threshold, ks)
                         : ComputeNodeScore(query_node, nodes[i]);
    }
  });
  // Single-threaded merge: memoize exactly the entries the serial path
  // would have cached (emplace keeps the first value on duplicates) —
  // except sub-threshold kernel results, which may be truncated upper
  // bounds rather than exact F_N values and therefore must not be cached.
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (!miss[i]) continue;
    if (thresholded && scores[i] < threshold) continue;
    if (cache.emplace(nodes[i], scores[i]).second) ++node_evals_;
  }
  for (const text::KernelStats& ks : worker_stats) kernel_stats_.Merge(ks);
  for (const uint8_t c : chunk_cancelled) {
    if (c) truncated_ = true;
  }
  return scores;
}

std::vector<NodeId> QueryScorer::RetrievalPool(int query_node) const {
  query_node = node_rep_[query_node];
  const query::QueryNode& qn = query_.node(query_node);

  // Retrieval: the node ids to score (index semantics unchanged).
  std::vector<NodeId> pool;
  bool full_scan = false;
  if (qn.wildcard) {
    // Wildcards match everything; typed wildcards restrict via the index
    // when available.
    const int32_t gt = graph_.FindTypeId(qn.type_name);
    if (!qn.type_name.empty() && index_ != nullptr && gt >= 0) {
      pool = index_->CandidatesByType(gt);
    } else {
      full_scan = true;
    }
  } else if (index_ != nullptr) {
    const int32_t gt =
        qn.type_name.empty() ? -1 : graph_.FindTypeId(qn.type_name);
    pool = config_.max_retrieval > 0
               ? index_->RankedCandidates(qn.label, gt, config_.max_retrieval)
               : index_->Candidates(qn.label, gt);
  } else {
    full_scan = true;
  }
  if (full_scan) {
    pool.resize(graph_.node_count());
    std::iota(pool.begin(), pool.end(), NodeId{0});
  }
  if (config_.sampling() && !qn.wildcard) {
    pool.erase(std::remove_if(pool.begin(), pool.end(),
                              [this](NodeId v) {
                                return !SampleKeep(config_.sample_seed, v,
                                                   config_.sample_rate);
                              }),
               pool.end());
  }
  return pool;
}

bool QueryScorer::SampleKeep(uint64_t seed, graph::NodeId v, double rate) {
  // splitmix64 of (seed ^ id): a pure function of the config and the node
  // id, so every engine/shard/thread derives the same sampled pool.
  uint64_t x = seed ^ (0x9e3779b97f4a7c15ull * (uint64_t{v} + 1));
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  x = x ^ (x >> 31);
  return static_cast<double>(x >> 11) * 0x1.0p-53 < rate;
}

std::vector<ScoredCandidate> QueryScorer::ScorePool(
    int query_node, const std::vector<NodeId>& pool) const {
  query_node = node_rep_[query_node];
  // A shard worker cannot apply the max_candidates cut (the coordinator
  // truncates after the cross-shard merge), so the only sound bound here
  // is node_threshold: a node whose upper bound is already below it can
  // never pass the filter and is dropped without scoring.
  const query::QueryNode& qn = query_.node(query_node);
  const std::vector<NodeId>* scored = &pool;
  std::vector<NodeId> kept;
  if (config_.use_pruned_retrieval && !qn.wildcard) {
    const auto& batch = prepared_store_[prepared_idx_[query_node]];
    kept.reserve(pool.size());
    for (const NodeId v : pool) {
      const double cap =
          index_ != nullptr
              ? ensemble_.RetrievalNodeBound(batch, index_->NodeLabelLength(v),
                                             index_->NodeLooksNumeric(v))
              : ensemble_.RetrievalNodeBound(
                    batch, graph_.NodeLabel(v).size(),
                    text::LooksNumeric(graph_.NodeLabel(v)));
      if (cap < config_.node_threshold - kBoundMargin) {
        ++retrieval_stats_.nodes_bound_skipped;
        continue;
      }
      kept.push_back(v);
    }
    retrieval_stats_.nodes_considered += pool.size();
    retrieval_stats_.nodes_scored += kept.size();
    scored = &kept;
  }
  const std::vector<double> scores =
      BulkScore(query_node, *scored, ResolveThreads(config_.threads),
                config_.node_threshold);
  std::vector<ScoredCandidate> out;
  for (size_t i = 0; i < scored->size(); ++i) {
    if (scores[i] >= config_.node_threshold) {
      out.push_back({(*scored)[i], scores[i]});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const ScoredCandidate& a, const ScoredCandidate& b) {
              return a.score > b.score ||
                     (a.score == b.score && a.node < b.node);
            });
  return out;
}

double QueryScorer::RetrievalTheta(const CandidateList& heap) const {
  // The heap only admits scores >= node_threshold, so once full its worst
  // kept score IS the max over both thresholds; theta never decreases.
  return (config_.max_candidates > 0 && heap.size() == config_.max_candidates)
             ? heap.front().score
             : config_.node_threshold;
}

void QueryScorer::MergeScoredWave(const std::vector<NodeId>& wave,
                                  const std::vector<double>& scores,
                                  CandidateList* heap) const {
  const size_t k = config_.max_candidates;
  for (size_t i = 0; i < wave.size(); ++i) {
    const double s = scores[i];
    // Sub-threshold entries are dropped exactly as the unpruned filter
    // drops them (kernel values below the wave's theta may be truncated
    // upper bounds, but those are < theta <= any kept score, so they can
    // never displace a kept entry either).
    if (s < config_.node_threshold) continue;
    const ScoredCandidate c{wave[i], s};
    if (k == 0 || heap->size() < k) {
      heap->push_back(c);
      if (k != 0) std::push_heap(heap->begin(), heap->end(), BetterCandidate);
      continue;
    }
    // Full: the root is the worst kept entry in the total order; replace
    // it only when c is strictly better (a tie at the cut keeps the
    // smaller id, matching the deterministic truncation).
    if (!BetterCandidate(c, heap->front())) continue;
    std::pop_heap(heap->begin(), heap->end(), BetterCandidate);
    heap->back() = c;
    std::push_heap(heap->begin(), heap->end(), BetterCandidate);
  }
}

void QueryScorer::PrunedRetrieveBlocks(int query_node,
                                       CandidateList* out) const {
  const query::QueryNode& qn = query_.node(query_node);
  const int32_t gt =
      qn.type_name.empty() ? -1 : graph_.FindTypeId(qn.type_name);
  const auto lists = index_->RetrievalLists(qn.label, gt);
  const auto& batch = prepared_store_[prepared_idx_[query_node]];

  // Cap every block of every list and order them (cap desc, list asc,
  // block asc — a total order, so the walk is deterministic).
  struct BlockRef {
    double cap;
    uint32_t list;
    uint32_t block;
  };
  std::pmr::vector<BlockRef> blocks(mem_);
  size_t total_blocks = 0;
  for (const auto& l : lists) total_blocks += index_->ListBlocks(l);
  blocks.reserve(total_blocks);
  for (uint32_t li = 0; li < lists.size(); ++li) {
    const size_t nb = index_->ListBlocks(lists[li]);
    for (uint32_t b = 0; b < nb; ++b) {
      blocks.push_back(
          {ensemble_.RetrievalBlockBound(batch, index_->BlockStats(lists[li], b)),
           li, b});
    }
  }
  std::sort(blocks.begin(), blocks.end(),
            [](const BlockRef& a, const BlockRef& b) {
              if (a.cap != b.cap) return a.cap > b.cap;
              if (a.list != b.list) return a.list < b.list;
              return a.block < b.block;
            });
  retrieval_stats_.blocks_considered += blocks.size();

  // Epoch-stamped dedup marks (lists overlap; each member scores once).
  if (seen_mark_.size() != graph_.node_count()) {
    seen_mark_.assign(graph_.node_count(), 0);
    seen_epoch_ = 0;
  }
  if (seen_epoch_ == std::numeric_limits<uint32_t>::max()) {
    std::fill(seen_mark_.begin(), seen_mark_.end(), 0);
    seen_epoch_ = 0;
  }
  ++seen_epoch_;

  const int threads = ResolveThreads(config_.threads);
  std::vector<NodeId> wave;
  wave.reserve(kRetrievalWave);
  double theta = RetrievalTheta(*out);
  const auto flush = [&] {
    if (wave.empty()) return;
    retrieval_stats_.nodes_scored += wave.size();
    const std::vector<double> scores =
        BulkScore(query_node, wave, threads, theta);
    MergeScoredWave(wave, scores, out);
    wave.clear();
    theta = RetrievalTheta(*out);
  };
  for (size_t bi = 0; bi < blocks.size(); ++bi) {
    if (cancel_ != nullptr && cancel_->ShouldStop()) {
      truncated_ = true;
      break;
    }
    if (blocks[bi].cap < theta - kBoundMargin) {
      // Blocks are cap-ordered and theta never decreases: every remaining
      // block is bounded below theta too. Stop outright — a member's true
      // score is <= its block cap < theta, so it can neither enter the
      // heap nor tie the cut.
      retrieval_stats_.blocks_skipped += blocks.size() - bi;
      for (size_t j = bi; j < blocks.size(); ++j) {
        retrieval_stats_.nodes_bound_skipped +=
            index_->BlockSize(lists[blocks[j].list], blocks[j].block);
      }
      break;
    }
    auto cursor = index_->BlockCursor(lists[blocks[bi].list], blocks[bi].block);
    uint32_t v;
    while (cursor.Next(&v)) {
      ++retrieval_stats_.nodes_considered;
      if (seen_mark_[v] == seen_epoch_) {
        ++retrieval_stats_.nodes_deduped;
        continue;
      }
      seen_mark_[v] = seen_epoch_;
      // Per-node refinement from the index's O(1) facts: theta may have
      // outgrown this node's own cap even though the block cap survived.
      // (Marking it seen first is sound — theta only rises.)
      const double cap = ensemble_.RetrievalNodeBound(
          batch, index_->NodeLabelLength(v), index_->NodeLooksNumeric(v));
      if (cap < theta - kBoundMargin) {
        ++retrieval_stats_.nodes_bound_skipped;
        continue;
      }
      wave.push_back(v);
      if (wave.size() >= kRetrievalWave) flush();
    }
  }
  flush();
  std::sort(out->begin(), out->end(), BetterCandidate);
}

void QueryScorer::PrunedRetrievePool(int query_node,
                                     const std::vector<NodeId>& pool,
                                     CandidateList* out) const {
  const auto& batch = prepared_store_[prepared_idx_[query_node]];
  struct Entry {
    double cap;
    NodeId v;
  };
  std::pmr::vector<Entry> order(mem_);
  order.reserve(pool.size());
  for (const NodeId v : pool) {
    // Index facts when available (shard workers, ranked pools); otherwise
    // the no-index fallback derives the same two facts from the label.
    const double cap =
        index_ != nullptr
            ? ensemble_.RetrievalNodeBound(batch, index_->NodeLabelLength(v),
                                           index_->NodeLooksNumeric(v))
            : ensemble_.RetrievalNodeBound(batch, graph_.NodeLabel(v).size(),
                                           text::LooksNumeric(graph_.NodeLabel(v)));
    order.push_back({cap, v});
  }
  std::sort(order.begin(), order.end(), [](const Entry& a, const Entry& b) {
    return a.cap != b.cap ? a.cap > b.cap : a.v < b.v;
  });
  retrieval_stats_.nodes_considered += order.size();

  const int threads = ResolveThreads(config_.threads);
  std::vector<NodeId> wave;
  wave.reserve(kRetrievalWave);
  double theta = RetrievalTheta(*out);
  const auto flush = [&] {
    if (wave.empty()) return;
    retrieval_stats_.nodes_scored += wave.size();
    const std::vector<double> scores =
        BulkScore(query_node, wave, threads, theta);
    MergeScoredWave(wave, scores, out);
    wave.clear();
    theta = RetrievalTheta(*out);
  };
  for (size_t i = 0; i < order.size(); ++i) {
    if (cancel_ != nullptr && cancel_->ShouldStop()) {
      truncated_ = true;
      break;
    }
    if (order[i].cap < theta - kBoundMargin) {
      // Cap-ordered and theta monotone: the rest can never make the list.
      retrieval_stats_.nodes_bound_skipped += order.size() - i;
      break;
    }
    wave.push_back(order[i].v);
    if (wave.size() >= kRetrievalWave) flush();
  }
  flush();
  std::sort(out->begin(), out->end(), BetterCandidate);
}

const CandidateList& QueryScorer::Candidates(int query_node) const {
  // All reads and writes go through the signature representative: query
  // nodes sharing (wildcard, type, label) retrieve and score one shared
  // list (see node_rep_ in the header).
  query_node = node_rep_[query_node];
  if (candidates_ready_[query_node]) return candidates_[query_node];
  auto& out = candidates_[query_node];

  // Cancelled requests skip retrieval + scoring outright. The list is NOT
  // marked ready (the empty result is never memoized as definitive) and the
  // truncation is recorded so the run as a whole reports itself partial.
  if (cancel_ != nullptr && cancel_->ShouldStop()) {
    truncated_ = true;
    return out;
  }
  candidates_ready_[query_node] = true;

  // Bound-driven retrieval (DESIGN.md "Bound-driven retrieval"): walk the
  // retrieval set in descending upper-bound order and skip everything that
  // provably cannot reach the running max_candidates-th score. Wildcards
  // have no label bound and stay on the scan path.
  const query::QueryNode& qn = query_.node(query_node);
  if (config_.use_pruned_retrieval && !qn.wildcard && !config_.sampling()) {
    if (index_ != nullptr && config_.max_retrieval == 0) {
      // Block-max walk over the postings union itself.
      PrunedRetrieveBlocks(query_node, &out);
    } else {
      // Pooled variant: the no-index full scan and the max_retrieval
      // rarity pre-ranking fix the pool first; bound-order it per node.
      PrunedRetrievePool(query_node, RetrievalPool(query_node), &out);
    }
    out.shrink_to_fit();
    return out;
  }

  const std::vector<NodeId> pool = RetrievalPool(query_node);

  // Bulk F_N scoring — chunked across the pool (serial at threads = 1).
  // The candidate filter below keeps only scores >= node_threshold, so the
  // kernel may early-exit any pair whose score bound falls below it: kept
  // candidates are exact (bit-identical to the kernel-off path), rejected
  // ones return a sub-threshold bound that the filter drops either way.
  const std::vector<double> scores = BulkScore(
      query_node, pool, ResolveThreads(config_.threads), config_.node_threshold);
  for (size_t i = 0; i < pool.size(); ++i) {
    if (scores[i] >= config_.node_threshold) out.push_back({pool[i], scores[i]});
  }

  // (score desc, node asc) is a total order, so the result is identical
  // for any scoring partition — and when max_candidates truncates,
  // nth_element + prefix sort beats partial_sort's heap pass (the no-index
  // O(|V|) scan otherwise pays O(n log k) heap churn for entries it
  // immediately drops).
  const auto by_score_then_node = [](const ScoredCandidate& a,
                                     const ScoredCandidate& b) {
    return a.score > b.score || (a.score == b.score && a.node < b.node);
  };
  if (config_.max_candidates > 0 && out.size() > config_.max_candidates) {
    const auto kth =
        out.begin() + static_cast<ptrdiff_t>(config_.max_candidates);
    std::nth_element(out.begin(), kth - 1, out.end(), by_score_then_node);
    std::sort(out.begin(), kth, by_score_then_node);
    out.resize(config_.max_candidates);
  } else {
    std::sort(out.begin(), out.end(), by_score_then_node);
  }
  out.shrink_to_fit();
  return out;
}

void QueryScorer::SeedCandidates(int query_node,
                                 const std::vector<ScoredCandidate>& list) const {
  query_node = node_rep_[query_node];
  if (candidates_ready_[query_node]) return;
  candidates_[query_node].assign(list.begin(), list.end());
  candidates_ready_[query_node] = true;
}

const CandidateList* QueryScorer::CandidatesIfReady(int query_node) const {
  query_node = node_rep_[query_node];
  return candidates_ready_[query_node] ? &candidates_[query_node] : nullptr;
}

double QueryScorer::CandidateScore(int query_node, graph::NodeId v) const {
  const query::QueryNode& qn = query_.node(query_node);
  if (qn.wildcard && qn.type_name.empty()) {
    return config_.wildcard_node_score;
  }
  query_node = node_rep_[query_node];
  if (candidate_map_ready_.empty()) {
    candidate_map_ready_.assign(query_.node_count(), false);
    candidate_score_map_.resize(query_.node_count());
  }
  if (!candidate_map_ready_[query_node]) {
    candidate_map_ready_[query_node] = true;
    auto& map = candidate_score_map_[query_node];
    for (const ScoredCandidate& c : Candidates(query_node)) {
      map.emplace(c.node, c.score);
    }
  }
  const auto& map = candidate_score_map_[query_node];
  const auto it = map.find(v);
  return it == map.end() ? -1.0 : it->second;
}

double QueryScorer::RelationScore(int query_edge, uint32_t relation) const {
  const query::QueryEdge& qe = query_.edge(query_edge);
  if (qe.wildcard_relation) return 1.0;
  query_edge = edge_rep_[query_edge];
  // Warmed edges answer from the dense table (pure lookup, thread-safe).
  if (relation_table_ready_[query_edge]) {
    return relation_table_[query_edge][relation];
  }
  auto& cache = relation_cache_[query_edge];
  const auto it = cache.find(relation);
  if (it != cache.end()) return it->second;
  const double s =
      ensemble_.Score(qe.relation, graph_.RelationName(relation));
  cache.emplace(relation, s);
  return s;
}

const std::vector<double>& QueryScorer::RelationScoresAll(
    int query_edge) const {
  query_edge = edge_rep_[query_edge];
  auto& table = relation_table_[query_edge];
  if (relation_table_ready_[query_edge]) return table;
  const query::QueryEdge& qe = query_.edge(query_edge);
  if (!qe.wildcard_relation) {
    table.resize(graph_.relation_count());
    const auto& cache = relation_cache_[query_edge];
    for (uint32_t r = 0; r < graph_.relation_count(); ++r) {
      const auto it = cache.find(r);
      table[r] = it != cache.end()
                     ? it->second
                     : ensemble_.Score(qe.relation, graph_.RelationName(r));
    }
  }
  relation_table_ready_[query_edge] = true;
  return table;
}

void QueryScorer::WarmStarCaches(int pivot, const std::vector<int>& edges,
                                 const std::vector<int>& leaves) const {
  Candidates(pivot);
  for (const int leaf : leaves) {
    const query::QueryNode& qn = query_.node(leaf);
    // Untyped wildcards never build candidate lists or maps — their
    // CandidateScore short-circuits to a constant (same as serial).
    if (qn.wildcard && qn.type_name.empty()) continue;
    Candidates(leaf);
    CandidateScore(leaf, graph::kInvalidNode);  // forces the score map
  }
  for (const int e : edges) {
    RelationScoresAll(e);
    MaxRelationScore(e);
  }
}

double QueryScorer::EdgeScore(int query_edge, uint32_t direct_relation,
                              int hops) const {
  if (hops <= 1) return RelationScore(query_edge, direct_relation);
  return PathDecay(hops);
}

double QueryScorer::PathDecay(int hops) const {
  return std::pow(config_.lambda, hops - 1);
}

double QueryScorer::MaxEdgeScore(int query_edge) const {
  double best = MaxRelationScore(query_edge);
  if (config_.d >= 2) best = std::max(best, config_.lambda);
  return best;
}

double QueryScorer::MaxRelationScore(int query_edge) const {
  const query::QueryEdge& qe = query_.edge(query_edge);
  if (qe.wildcard_relation) return 1.0;
  query_edge = edge_rep_[query_edge];
  if (max_relation_ready_[query_edge]) return max_relation_score_[query_edge];
  max_relation_ready_[query_edge] = true;
  double best = 0.0;
  for (uint32_t r = 0; r < graph_.relation_count(); ++r) {
    best = std::max(best, RelationScore(query_edge, r));
    if (best >= 1.0) break;
  }
  max_relation_score_[query_edge] = best;
  return best;
}

const std::unordered_map<graph::NodeId, int>& QueryScorer::WalkBall(
    graph::NodeId a) const {
  auto it = walk_ball_cache_.find(a);
  if (it != walk_ball_cache_.end()) return it->second;
  if (walk_ball_pairs_ > kWalkBallCacheLimit) {
    walk_ball_cache_.clear();
    walk_ball_pairs_ = 0;
  }
  auto& ball = walk_ball_cache_[a];
  const int d = config_.d;
  if (d < 2) return ball;
  // W_1 = N(a); W_h = N(W_{h-1}); record each node's first h >= 2.
  // Frontier dedup uses the epoch-stamped flat mark array: one epoch per
  // BFS layer (walk semantics: a node seen at layer h may legitimately
  // reappear at a later layer), no per-call hash maps.
  if (walk_mark_.size() != graph_.node_count()) {
    walk_mark_.assign(graph_.node_count(), 0);
    walk_epoch_ = 0;
  }
  if (walk_epoch_ >
      std::numeric_limits<uint32_t>::max() - static_cast<uint32_t>(d) - 2) {
    std::fill(walk_mark_.begin(), walk_mark_.end(), 0);
    walk_epoch_ = 0;
  }
  walk_layer_.clear();
  ++walk_epoch_;
  for (const auto& nb : graph_.Neighbors(a)) {
    if (walk_mark_[nb.node] != walk_epoch_) {
      walk_mark_[nb.node] = walk_epoch_;
      walk_layer_.push_back(nb.node);
    }
  }
  for (int h = 2; h <= d && !walk_layer_.empty(); ++h) {
    walk_next_.clear();
    ++walk_epoch_;
    for (const graph::NodeId x : walk_layer_) {
      for (const auto& nb : graph_.Neighbors(x)) {
        if (walk_mark_[nb.node] != walk_epoch_) {
          walk_mark_[nb.node] = walk_epoch_;
          walk_next_.push_back(nb.node);
          ball.try_emplace(nb.node, h);  // keeps the smallest h
        }
      }
    }
    std::swap(walk_layer_, walk_next_);
  }
  walk_ball_pairs_ += ball.size();
  return ball;
}

int QueryScorer::FirstWalkLength(graph::NodeId a, graph::NodeId b) const {
  const auto& ball = WalkBall(a);
  const auto it = ball.find(b);
  return it == ball.end() ? 0 : it->second;
}

double QueryScorer::PairEdgeScore(int query_edge, graph::NodeId a,
                                  graph::NodeId b) const {
  if (pair_edge_cache_.empty()) pair_edge_cache_.resize(query_.edge_count());
  query_edge = edge_rep_[query_edge];
  // Normalize the symmetric key.
  graph::NodeId lo = a, hi = b;
  if (lo > hi) std::swap(lo, hi);
  const uint64_t key = (static_cast<uint64_t>(lo) << 32) | hi;
  auto& cache = pair_edge_cache_[query_edge];
  const auto it = cache.find(key);
  if (it != cache.end()) return it->second;

  double best = -1.0;
  // Direct edges (h = 1): relation similarity.
  const graph::NodeId scan = graph_.Degree(a) <= graph_.Degree(b) ? a : b;
  const graph::NodeId other = scan == a ? b : a;
  for (const auto& nb : graph_.Neighbors(scan)) {
    if (nb.node != other) continue;
    const double rel = RelationScore(query_edge, nb.relation);
    if (rel >= config_.edge_threshold) best = std::max(best, rel);
  }
  // Multi-hop walk (smallest h in [2, d]); walks are symmetric, so query
  // the cheaper endpoint's ball.
  if (config_.d >= 2) {
    const int h = FirstWalkLength(scan, other);
    if (h > 0) {
      const double decay = PathDecay(h);
      if (decay >= config_.edge_threshold) best = std::max(best, decay);
    }
  }
  cache.emplace(key, best);
  return best;
}

double QueryScorer::ScoreUpperBound() const {
  double ub = 0.0;
  for (int u = 0; u < query_.node_count(); ++u) {
    ub += query_.node(u).wildcard ? config_.wildcard_node_score : 1.0;
  }
  for (int e = 0; e < query_.edge_count(); ++e) ub += MaxEdgeScore(e);
  return ub;
}

}  // namespace star::scoring
