#ifndef STAR_CORE_FRAMEWORK_H_
#define STAR_CORE_FRAMEWORK_H_

#include <algorithm>
#include <limits>
#include <memory>
#include <vector>

#include <string>

#include "common/arena.h"
#include "common/deadline.h"
#include "core/decomposition.h"
#include "core/match.h"
#include "core/rank_join.h"
#include "core/reuse_cache.h"
#include "core/star_search.h"
#include "graph/knowledge_graph.h"
#include "graph/label_index.h"
#include "query/query_graph.h"
#include "scoring/match_config.h"
#include "scoring/query_scorer.h"
#include "text/ensemble.h"

namespace star::core {

/// End-to-end configuration of the STAR framework (Fig. 4).
struct StarOptions {
  /// Star-query engine: stark or stard.
  StarStrategy strategy = StarStrategy::kStard;
  /// Matching semantics (thresholds, lambda, d, injectivity).
  scoring::MatchConfig match;
  /// Decomposition heuristic for general queries.
  DecompositionOptions decomposition;
  /// α of the two-way rank-join score split (§VI-A). The first star of a
  /// shared node owns α of its F_N; with > 2 stars the remainder is split
  /// evenly.
  double alpha = 0.5;
  /// Cross-query reuse cache (nullable, must outlive the framework and be
  /// bound to the same graph/ensemble/index): candidate lists are seeded
  /// into the scorer before decomposition and star match streams replay
  /// their memoized prefixes. Hits are bitwise identical to cold
  /// execution; cancelled/truncated runs never insert.
  ReuseCache* reuse = nullptr;
};

/// Serializes every StarOptions field that can change results (bit-exact
/// doubles), plus whether a label index is attached — the retrieval
/// semantics differ with and without one. `threads`, `use_scoring_kernel`,
/// `use_batch_kernel` and `use_pruned_retrieval` are deliberately
/// excluded: all four carry a bit-identity contract (DESIGN.md "Threading
/// model" / "Scoring kernel" / "Memory layout & batched scoring" /
/// "Bound-driven retrieval"), so results are interchangeable across their
/// settings. Used as the config segment of serve-layer cache keys and of
/// ReuseCache keys.
std::string StarOptionsFingerprint(const StarOptions& o, bool has_index);

/// α-scheme ownership weights for star `star_index` of `stars` (§VI-A):
/// weights[u] is the fraction of query node u's F_N that this star's
/// ranking function owns (0 for nodes outside the star; the first owning
/// star gets α, the rest split the remainder evenly). Shared by
/// StarFramework and the sharded coordinator — both must derive
/// bit-identical weights for the same decomposition.
std::vector<double> AlphaNodeWeights(const query::QueryGraph& q,
                                     const std::vector<query::StarQuery>& stars,
                                     size_t star_index, double alpha);

/// ReuseCache key of one query node's candidate list:
/// fingerprint + 'N' + canonical node signature.
std::string CandidateCacheKey(const std::string& config_fingerprint,
                              const query::QueryNode& n);

/// ReuseCache key of one canonical star's top-list, or "" when the
/// canonicalization is not exact (such stars are never memoized).
std::string StarCacheKey(const std::string& config_fingerprint,
                         const query::QueryGraph& q,
                         const query::StarQuery& star,
                         const std::vector<double>& node_weights);

/// Per-query diagnostics of the sharded scatter-gather backend (all zero
/// when a query ran single-process). Defined here so FrameworkStats can
/// embed it without core depending on src/shard/; the shard coordinator
/// fills it in.
struct ShardStats {
  /// Number of shards the query fanned out to (0 = not sharded).
  size_t shards = 0;
  /// Star-match pulls issued to each shard across all star streams.
  std::vector<size_t> shard_pulls;
  size_t total_pulls = 0;
  /// Query nodes whose candidate scoring was scattered across shards.
  size_t scatter_nodes = 0;
  /// Emitted star matches whose pivot sits on a partition boundary (owned
  /// node incident to at least one cut edge) — how often answers lean on
  /// halo replication.
  size_t boundary_pivot_hits = 0;
  /// Global emission count at which the coordinator issued its LAST shard
  /// pull: emissions after this round were served entirely from staged
  /// matches because every live shard bound was dominated (the cross-shard
  /// early-termination point).
  size_t early_termination_round = 0;
  /// Wall time spent in the coordinator (scatter + merge + joins),
  /// excluding nothing — workers run inside it.
  double coordinator_wall_ms = 0.0;

  void Merge(const ShardStats& o) {
    shards = std::max(shards, o.shards);
    if (shard_pulls.size() < o.shard_pulls.size()) {
      shard_pulls.resize(o.shard_pulls.size(), 0);
    }
    for (size_t s = 0; s < o.shard_pulls.size(); ++s) {
      shard_pulls[s] += o.shard_pulls[s];
    }
    total_pulls += o.total_pulls;
    scatter_nodes += o.scatter_nodes;
    boundary_pivot_hits += o.boundary_pivot_hits;
    early_termination_round =
        std::max(early_termination_round, o.early_termination_round);
    coordinator_wall_ms += o.coordinator_wall_ms;
  }
};

/// Per-query-node candidate-list digest, exported for the serve layer's
/// degradation drop bounds: when a tightened cutoff or pool sampling may
/// have excluded candidates, the certificate needs the best/worst KEPT
/// F_N per node to bound what any excluded candidate could contribute.
struct NodeCandidateInfo {
  /// The list was computed (or seeded) during the run. When false the
  /// caps below are meaningless and readers must assume the worst.
  bool computed = false;
  /// Wildcard query node: no list, F_N == wildcard_node_score for all v.
  bool wildcard = false;
  /// Best kept F_N (lists are (score desc, node asc); 0 if empty).
  double top_score = 0.0;
  /// Worst kept F_N (the cut boundary; 0 if empty).
  double cut_score = 0.0;
  /// The list is exactly max_candidates long — the cutoff may have
  /// dropped candidates above node_threshold.
  bool cut_applied = false;
  /// The run's config sampled this node's retrieval pool.
  bool sampled = false;
};

/// Per-query execution diagnostics.
struct FrameworkStats {
  /// True if a cancellation checkpoint fired anywhere in the query: the
  /// returned matches are then a (correctly ordered) prefix of the exact
  /// top-k rather than the complete answer.
  bool cancelled = false;
  /// Certified residual bound: upper bound on the score of any valid
  /// match (under THIS run's config) not among the returned matches.
  /// Sound for complete, cancelled, and truncated runs alike: the live
  /// pipeline bound (tightened by the last emitted score — streams are
  /// monotone) when every candidate list is complete, else the scorer's
  /// a-priori ScoreUpperBound. -inf = search space exhausted; +inf =
  /// nothing computed (pre-expired request).
  double residual_bound = std::numeric_limits<double>::infinity();
  /// Candidate-list digests per query node (index-aligned with the query;
  /// empty when the run returned before building a scorer).
  std::vector<NodeCandidateInfo> node_candidates;
  size_t num_stars = 0;
  /// Matches pulled from each star stream (the search depths |L_i|).
  std::vector<size_t> star_depths;
  /// Total depth D = sum |L_i| (§VI-A's effectiveness metric).
  size_t total_depth = 0;
  /// Aggregated star-engine counters.
  StarSearchStats search;

  /// Cross-query reuse activity (all zero when StarOptions::reuse is
  /// unset). A star counts as a hit when its stream replayed a memoized
  /// prefix; a resume additionally ran the engine past the prefix.
  size_t star_cache_hits = 0;
  size_t star_cache_misses = 0;
  size_t star_cache_resumes = 0;
  /// Candidate lists injected into the scorer from the reuse cache /
  /// harvested into it after a clean run.
  size_t candidate_lists_seeded = 0;
  size_t candidate_lists_inserted = 0;

  /// Scatter-gather diagnostics (all zero when run single-process).
  ShardStats shard;
};

/// Fills one NodeCandidateInfo per query node from the scorer's memoized
/// candidate lists (never triggers computation). Shared by StarFramework
/// and the sharded ShardEngine so both backends export identical digests.
std::vector<NodeCandidateInfo> CollectNodeCandidateInfo(
    const query::QueryGraph& q, const scoring::QueryScorer& scorer);

/// The STAR top-k query engine (Fig. 4): decomposes a general graph query
/// into stars, evaluates each star with stark/stard, and assembles
/// complete matches with the α-scheme rank join. Star queries bypass the
/// join entirely.
class StarFramework {
 public:
  /// All referenced objects must outlive the framework. `index` may be
  /// null (candidates then scan all of V).
  StarFramework(const graph::KnowledgeGraph& g,
                const text::SimilarityEnsemble& ensemble,
                const graph::LabelIndex* index, StarOptions options);

  /// Top-k matches of q in descending score order. Exact under the
  /// configured matching semantics (ties broken arbitrarily).
  std::vector<GraphMatch> TopK(const query::QueryGraph& q, size_t k);

  /// Cancellable variant: `cancel` (nullable, must outlive the call) is
  /// polled at every hot-loop checkpoint — candidate scoring, stark
  /// enumeration, stard propagation, reserve activation, rank-join pulls.
  /// Once it fires the call winds down and returns the matches emitted so
  /// far (a prefix of the exact top-k, possibly empty), with
  /// last_stats().cancelled set. An already-expired deadline returns
  /// before any candidate retrieval.
  std::vector<GraphMatch> TopK(const query::QueryGraph& q, size_t k,
                               const Cancellation* cancel);

  /// Arena variant: `arena` (nullable, single-threaded, owned by the
  /// caller) backs the query's transient state — candidate lists,
  /// walk-ball scratch, the rank-join result heap. The caller must not
  /// Reset() it until the returned matches have been consumed of every
  /// reference into scorer state (the matches themselves own their
  /// mappings and survive a reset). A serving worker that owns one arena
  /// and resets it once per request reaches steady-state zero allocation
  /// churn on the cold path. Results are bit-identical with and without
  /// an arena.
  std::vector<GraphMatch> TopK(const query::QueryGraph& q, size_t k,
                               const Cancellation* cancel,
                               common::MonotonicArena* arena);

  /// Diagnostics of the most recent TopK call.
  const FrameworkStats& last_stats() const { return stats_; }

  const StarOptions& options() const { return options_; }
  StarOptions& mutable_options() { return options_; }

 private:
  /// Probes the reuse cache for each query node's candidate list and seeds
  /// hits into the scorer (before decomposition, so its sampling reuses
  /// them too). Fills node_keys/seeded for the post-run harvest.
  void SeedCandidateLists(const query::QueryGraph& q,
                          const scoring::QueryScorer& scorer,
                          std::vector<std::string>* node_keys,
                          std::vector<bool>* seeded);

  const graph::KnowledgeGraph& graph_;
  const text::SimilarityEnsemble& ensemble_;
  const graph::LabelIndex* index_;
  StarOptions options_;
  /// StarOptionsFingerprint of options_ — the config segment every
  /// ReuseCache key starts with.
  std::string config_fingerprint_;
  FrameworkStats stats_;
};

}  // namespace star::core

#endif  // STAR_CORE_FRAMEWORK_H_
