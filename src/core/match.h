#ifndef STAR_CORE_MATCH_H_
#define STAR_CORE_MATCH_H_

#include <optional>
#include <vector>

#include "graph/knowledge_graph.h"
#include "query/query_graph.h"

namespace star::core {

/// A match of a star (sub)query: the pivot's data node, one data node per
/// covered query edge's leaf (aligned with StarQuery::edges), and the
/// aggregate score (pivot F_N + per-leaf F_N + per-edge F_E).
struct StarMatch {
  graph::NodeId pivot = graph::kInvalidNode;
  std::vector<graph::NodeId> leaves;
  double score = 0.0;
};

/// A match of a full query graph: mapping[u] is the data node matched to
/// query node u (kInvalidNode if unmapped), plus the Eq. 2 score.
struct GraphMatch {
  std::vector<graph::NodeId> mapping;
  double score = 0.0;

  /// True if every query node is mapped.
  bool Complete() const {
    for (const graph::NodeId v : mapping) {
      if (v == graph::kInvalidNode) return false;
    }
    return true;
  }

  /// True if no two query nodes map to the same data node (ignoring
  /// unmapped slots).
  bool Injective() const;
};

/// Pull interface for algorithms that emit matches in non-increasing score
/// order. This monotonicity is the property §VI-A relies on: it makes a
/// match stream equivalent to a pre-sorted list, enabling rank joins with
/// valid upper bounds.
class RankedMatchIterator {
 public:
  virtual ~RankedMatchIterator() = default;

  /// The next-best match, or nullopt when exhausted. Scores of successive
  /// results never increase.
  virtual std::optional<GraphMatch> Next() = 0;

  /// An upper bound on the score of any match not yet returned.
  /// Must be <= the score of the previously returned match once one has
  /// been returned; -infinity when exhausted.
  virtual double UpperBound() const = 0;
};

inline bool GraphMatch::Injective() const {
  for (size_t i = 0; i < mapping.size(); ++i) {
    if (mapping[i] == graph::kInvalidNode) continue;
    for (size_t j = i + 1; j < mapping.size(); ++j) {
      if (mapping[i] == mapping[j]) return false;
    }
  }
  return true;
}

}  // namespace star::core

#endif  // STAR_CORE_MATCH_H_
