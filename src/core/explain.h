#ifndef STAR_CORE_EXPLAIN_H_
#define STAR_CORE_EXPLAIN_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/match.h"
#include "scoring/query_scorer.h"

namespace star::core {

/// How one query node was matched.
struct NodeExplanation {
  int query_node = -1;
  graph::NodeId node = graph::kInvalidNode;
  double score = 0.0;  // F_N
};

/// How one query edge was matched: the witness walk in the data graph
/// (endpoint matches inclusive, so path.size() - 1 == hops) and its F_E.
struct EdgeExplanation {
  int query_edge = -1;
  std::vector<graph::NodeId> path;
  double score = 0.0;  // F_E
};

/// A complete score breakdown of a match — the "why" behind Eq. 2.
/// total always equals the sum of the parts.
struct MatchExplanation {
  std::vector<NodeExplanation> nodes;
  std::vector<EdgeExplanation> edges;
  double total = 0.0;
};

/// Reconstructs the full breakdown of a (complete) match under the
/// scorer's semantics: per-node F_N and, per query edge, a shortest
/// witness walk achieving the edge's F_E (a single data edge when the
/// direct relation match is at least as good as any multi-hop decay).
/// Fails with FailedPrecondition if the match is incomplete or an edge
/// has no valid connection within d.
Result<MatchExplanation> ExplainMatch(scoring::QueryScorer& scorer,
                                      const GraphMatch& match);

/// Human-readable multi-line rendering with entity labels.
std::string FormatExplanation(const scoring::QueryScorer& scorer,
                              const MatchExplanation& explanation);

}  // namespace star::core

#endif  // STAR_CORE_EXPLAIN_H_
