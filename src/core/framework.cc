#include "core/framework.h"

#include <algorithm>

namespace star::core {

using graph::KnowledgeGraph;
using graph::LabelIndex;
using query::QueryGraph;
using query::StarQuery;
using scoring::QueryScorer;
using text::SimilarityEnsemble;

StarFramework::StarFramework(const KnowledgeGraph& g,
                             const SimilarityEnsemble& ensemble,
                             const LabelIndex* index, StarOptions options)
    : graph_(g), ensemble_(ensemble), index_(index), options_(options) {}

std::vector<double> StarFramework::NodeWeights(
    const QueryGraph& q, const std::vector<StarQuery>& stars,
    size_t star_index) const {
  // Which stars touch each query node (pivot or leaf of an owned edge).
  std::vector<std::vector<size_t>> stars_of_node(q.node_count());
  for (size_t i = 0; i < stars.size(); ++i) {
    std::vector<bool> in_star(q.node_count(), false);
    in_star[stars[i].pivot] = true;
    for (const int e : stars[i].edges) {
      in_star[q.edge(e).u] = true;
      in_star[q.edge(e).v] = true;
    }
    for (int u = 0; u < q.node_count(); ++u) {
      if (in_star[u]) stars_of_node[u].push_back(i);
    }
  }
  std::vector<double> weights(q.node_count(), 1.0);
  for (int u = 0; u < q.node_count(); ++u) {
    const auto& owners = stars_of_node[u];
    const auto it = std::find(owners.begin(), owners.end(), star_index);
    if (it == owners.end()) {
      weights[u] = 0.0;  // node not in this star; unused
      continue;
    }
    if (owners.size() == 1) {
      weights[u] = 1.0;
    } else if (*owners.begin() == star_index) {
      weights[u] = options_.alpha;  // the first (left) owner gets α
    } else {
      weights[u] = (1.0 - options_.alpha) /
                   static_cast<double>(owners.size() - 1);
    }
  }
  return weights;
}

std::vector<GraphMatch> StarFramework::TopK(const QueryGraph& q, size_t k) {
  return TopK(q, k, nullptr);
}

std::vector<GraphMatch> StarFramework::TopK(const QueryGraph& q, size_t k,
                                            const Cancellation* cancel) {
  stats_ = FrameworkStats{};
  std::vector<GraphMatch> out;
  if (q.node_count() == 0 || k == 0) return out;

  // Pre-expired deadline / pre-cancelled request: return before building
  // the scorer so not a single candidate is retrieved or scored.
  CancelChecker cancel_check(cancel);
  if (cancel_check.ShouldStop()) {
    stats_.cancelled = true;
    return out;
  }

  // Scorer shared by decomposition sampling and all star searches, so
  // candidate lists and score memos are computed once per query.
  QueryScorer scorer(graph_, q, ensemble_, options_.match, index_);
  scorer.set_cancellation(cancel);

  const std::vector<StarQuery> stars =
      DecomposeQuery(q, options_.decomposition, &scorer);
  stats_.num_stars = stars.size();

  if (stars.size() == 1) {
    // Pure star query: the engine output is final (Fig. 4 step 2 only).
    StarSearch::Options so;
    so.strategy = options_.strategy;
    so.k_hint = k;
    so.cancel = cancel;
    StarSearch search(scorer, stars[0], so);
    const auto matches = search.TopK(k);
    out.reserve(matches.size());
    for (const auto& m : matches) out.push_back(search.ToGraphMatch(m));
    stats_.star_depths = {matches.size()};
    stats_.total_depth = matches.size();
    stats_.search = search.stats();
    // The scorer's own checkpoints (bulk scoring, candidate retrieval) can
    // observe an expiry that the search-level checkers miss; its sticky
    // truncation flag makes sure such a run is never reported complete.
    stats_.cancelled = stats_.search.cancelled || scorer.truncated();
    return out;
  }

  // General query: build one monotone stream per star and fold them with
  // left-deep α-scheme rank joins (§VI-A).
  std::vector<StarMatchStream*> stream_ptrs;
  std::vector<RankJoin*> join_ptrs;
  std::unique_ptr<CoveredMatchIterator> pipeline;
  // Keep the searches' scorer alive: all streams reference `scorer`.
  for (size_t i = 0; i < stars.size(); ++i) {
    StarSearch::Options so;
    so.strategy = options_.strategy;
    so.k_hint = 0;  // joins may need arbitrarily deep star streams
    so.node_weights = NodeWeights(q, stars, i);
    so.cancel = cancel;
    auto stream = std::make_unique<StarMatchStream>(
        std::make_unique<StarSearch>(scorer, stars[i], so));
    stream_ptrs.push_back(stream.get());
    if (pipeline == nullptr) {
      pipeline = std::move(stream);
    } else {
      auto join = std::make_unique<RankJoin>(std::move(pipeline),
                                             std::move(stream),
                                             options_.match.enforce_injective,
                                             cancel);
      join_ptrs.push_back(join.get());
      pipeline = std::move(join);
    }
  }

  while (out.size() < k) {
    if (cancel_check.ShouldStop()) {
      stats_.cancelled = true;
      break;
    }
    auto m = pipeline->Next();
    if (!m.has_value()) break;
    out.push_back(std::move(*m));
  }

  stats_.star_depths.clear();
  for (StarMatchStream* s : stream_ptrs) {
    stats_.star_depths.push_back(s->depth());
    stats_.total_depth += s->depth();
    stats_.search.Merge(s->search().stats());
  }
  stats_.cancelled |= stats_.search.cancelled;
  for (const RankJoin* j : join_ptrs) stats_.cancelled |= j->cancelled();
  stats_.cancelled |= scorer.truncated();
  return out;
}

}  // namespace star::core
