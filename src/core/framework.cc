#include "core/framework.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>

#include "query/query_canonical.h"

namespace star::core {

using graph::KnowledgeGraph;
using graph::LabelIndex;
using query::QueryGraph;
using query::StarQuery;
using scoring::QueryScorer;
using text::SimilarityEnsemble;

namespace {

// Key-segment separator, below any canonical-signature byte's meaning.
constexpr char kSep = '\x1d';

void AppendU64(std::string& s, uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  s += buf;
  s += kSep;
}

// Bit-exact double encoding: two configs key equal iff every scoring
// parameter is the identical double, with no decimal round-trip fuzz.
void AppendDouble(std::string& s, double d) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(d));
  std::memcpy(&bits, &d, sizeof(bits));
  AppendU64(s, bits);
}

}  // namespace

std::string StarOptionsFingerprint(const StarOptions& o, bool has_index) {
  std::string s;
  AppendU64(s, static_cast<uint64_t>(o.strategy));
  AppendDouble(s, o.match.node_threshold);
  AppendDouble(s, o.match.edge_threshold);
  AppendDouble(s, o.match.lambda);
  AppendU64(s, static_cast<uint64_t>(o.match.d));
  AppendU64(s, o.match.max_candidates);
  AppendU64(s, o.match.max_retrieval);
  AppendDouble(s, o.match.wildcard_node_score);
  AppendU64(s, o.match.enforce_injective ? 1 : 0);
  // Degradation sampling is result-affecting (it shrinks candidate
  // pools), so degraded and nominal runs must never share cache entries.
  AppendDouble(s, o.match.sample_rate);
  AppendU64(s, o.match.sample_seed);
  AppendU64(s, static_cast<uint64_t>(o.decomposition.strategy));
  AppendDouble(s, o.decomposition.lambda_tradeoff);
  AppendU64(s, o.decomposition.sample_size);
  AppendDouble(s, o.decomposition.connectivity_p);
  AppendU64(s, o.decomposition.seed);
  AppendU64(s, static_cast<uint64_t>(o.decomposition.max_enumeration_nodes));
  AppendDouble(s, o.alpha);
  AppendU64(s, has_index ? 1 : 0);
  return s;
}

StarFramework::StarFramework(const KnowledgeGraph& g,
                             const SimilarityEnsemble& ensemble,
                             const LabelIndex* index, StarOptions options)
    : graph_(g),
      ensemble_(ensemble),
      index_(index),
      options_(options),
      config_fingerprint_(
          StarOptionsFingerprint(options_, index_ != nullptr)) {}

std::vector<double> AlphaNodeWeights(const QueryGraph& q,
                                     const std::vector<StarQuery>& stars,
                                     size_t star_index, double alpha) {
  // Which stars touch each query node (pivot or leaf of an owned edge).
  std::vector<std::vector<size_t>> stars_of_node(q.node_count());
  for (size_t i = 0; i < stars.size(); ++i) {
    std::vector<bool> in_star(q.node_count(), false);
    in_star[stars[i].pivot] = true;
    for (const int e : stars[i].edges) {
      in_star[q.edge(e).u] = true;
      in_star[q.edge(e).v] = true;
    }
    for (int u = 0; u < q.node_count(); ++u) {
      if (in_star[u]) stars_of_node[u].push_back(i);
    }
  }
  std::vector<double> weights(q.node_count(), 1.0);
  for (int u = 0; u < q.node_count(); ++u) {
    const auto& owners = stars_of_node[u];
    const auto it = std::find(owners.begin(), owners.end(), star_index);
    if (it == owners.end()) {
      weights[u] = 0.0;  // node not in this star; unused
      continue;
    }
    if (owners.size() == 1) {
      weights[u] = 1.0;
    } else if (*owners.begin() == star_index) {
      weights[u] = alpha;  // the first (left) owner gets α
    } else {
      weights[u] = (1.0 - alpha) / static_cast<double>(owners.size() - 1);
    }
  }
  return weights;
}

std::string CandidateCacheKey(const std::string& config_fingerprint,
                              const query::QueryNode& n) {
  std::string key = config_fingerprint;
  key += 'N';
  key += query::CanonicalNodeSignature(n);
  return key;
}

std::string StarCacheKey(const std::string& config_fingerprint,
                         const QueryGraph& q, const StarQuery& star,
                         const std::vector<double>& node_weights) {
  const query::CanonicalStar canon =
      query::CanonicalizeStar(q, star, node_weights);
  if (!canon.exact) return {};
  std::string key = config_fingerprint;
  key += 'S';
  key += canon.signature;
  return key;
}

std::vector<GraphMatch> StarFramework::TopK(const QueryGraph& q, size_t k) {
  return TopK(q, k, nullptr);
}

std::vector<NodeCandidateInfo> CollectNodeCandidateInfo(
    const QueryGraph& q, const QueryScorer& scorer) {
  const scoring::MatchConfig& cfg = scorer.config();
  std::vector<NodeCandidateInfo> out(q.node_count());
  for (int u = 0; u < q.node_count(); ++u) {
    NodeCandidateInfo& info = out[u];
    info.wildcard = q.node(u).wildcard;
    info.sampled = cfg.sampling() && !info.wildcard;
    const auto* list = scorer.CandidatesIfReady(u);
    if (list == nullptr) continue;
    info.computed = true;
    if (!list->empty()) {
      info.top_score = list->front().score;
      info.cut_score = list->back().score;
    }
    info.cut_applied =
        cfg.max_candidates > 0 && list->size() == cfg.max_candidates;
  }
  return out;
}

void StarFramework::SeedCandidateLists(const QueryGraph& q,
                                       const QueryScorer& scorer,
                                       std::vector<std::string>* node_keys,
                                       std::vector<bool>* seeded) {
  node_keys->resize(q.node_count());
  seeded->assign(q.node_count(), false);
  for (int u = 0; u < q.node_count(); ++u) {
    std::string& key = (*node_keys)[u];
    key = CandidateCacheKey(config_fingerprint_, q.node(u));
    if (const auto list = options_.reuse->LookupCandidates(key)) {
      scorer.SeedCandidates(u, *list);
      (*seeded)[u] = true;
      ++stats_.candidate_lists_seeded;
    }
  }
}

std::vector<GraphMatch> StarFramework::TopK(const QueryGraph& q, size_t k,
                                            const Cancellation* cancel) {
  // Even one-shot callers benefit from per-query arena allocation (block
  // reuse within the query); persistent-worker callers pass their own
  // arena via the overload below and amortize the blocks across requests.
  common::MonotonicArena arena;
  return TopK(q, k, cancel, &arena);
}

std::vector<GraphMatch> StarFramework::TopK(const QueryGraph& q, size_t k,
                                            const Cancellation* cancel,
                                            common::MonotonicArena* arena) {
  stats_ = FrameworkStats{};
  std::vector<GraphMatch> out;
  if (q.node_count() == 0 || k == 0) return out;

  // Pre-expired deadline / pre-cancelled request: return before building
  // the scorer so not a single candidate is retrieved or scored.
  CancelChecker cancel_check(cancel);
  if (cancel_check.ShouldStop()) {
    stats_.cancelled = true;
    return out;
  }

  // Scorer shared by decomposition sampling and all star searches, so
  // candidate lists and score memos are computed once per query.
  QueryScorer scorer(graph_, q, ensemble_, options_.match, index_, arena);
  scorer.set_cancellation(cancel);

  // Cross-query reuse: capture the generation BEFORE any lookup, then seed
  // warm candidate lists into the scorer so decomposition sampling and
  // every star search skip retrieval + F_N scoring for shared node shapes.
  ReuseCache* const reuse = options_.reuse;
  const uint64_t generation = reuse ? reuse->generation() : 0;
  std::vector<std::string> node_keys;
  std::vector<bool> seeded;
  if (reuse != nullptr) SeedCandidateLists(q, scorer, &node_keys, &seeded);

  const std::vector<StarQuery> stars =
      DecomposeQuery(q, options_.decomposition, &scorer);
  stats_.num_stars = stars.size();
  const bool single = stars.size() == 1;

  // One memo-aware monotone stream per star. Single-star queries use the
  // stream directly (Fig. 4 step 2 only); general queries fold the streams
  // with left-deep α-scheme rank joins (§VI-A). Star cache keys combine
  // the config fingerprint with the canonical star signature; lookups
  // compare the full key string, never a hash.
  std::vector<CachedStarStream*> stream_ptrs;
  std::vector<RankJoin*> join_ptrs;
  std::unique_ptr<CoveredMatchIterator> pipeline;
  // Keep the searches' scorer alive: all streams reference `scorer`.
  for (size_t i = 0; i < stars.size(); ++i) {
    StarSearch::Options so;
    so.strategy = options_.strategy;
    // Joins may need arbitrarily deep star streams; a standalone star
    // never pulls past k, so Prop. 3 pruning applies.
    so.k_hint = single ? k : 0;
    if (!single) so.node_weights = AlphaNodeWeights(q, stars, i, options_.alpha);
    so.cancel = cancel;
    std::string star_key;
    if (reuse != nullptr) {
      star_key = StarCacheKey(config_fingerprint_, q, stars[i],
                              so.node_weights);
    }
    auto stream = std::make_unique<CachedStarStream>(
        scorer, stars[i], std::move(so), reuse, std::move(star_key),
        generation);
    stream_ptrs.push_back(stream.get());
    if (pipeline == nullptr) {
      pipeline = std::move(stream);
    } else {
      auto join = std::make_unique<RankJoin>(std::move(pipeline),
                                             std::move(stream),
                                             options_.match.enforce_injective,
                                             cancel,
                                             scorer.transient_resource());
      join_ptrs.push_back(join.get());
      pipeline = std::move(join);
    }
  }

  while (out.size() < k) {
    // scorer.truncated() is a plain bool read, checked unamortized: a
    // cancellation observed inside a lazy Candidates() call leaves that
    // list missing arbitrary entries, and the stride-amortized clock
    // check alone could emit further (possibly misordered) matches from
    // the incomplete universe before noticing the expiry.
    if (cancel_check.ShouldStop() || scorer.truncated()) {
      stats_.cancelled = true;
      break;
    }
    auto m = pipeline->Next();
    if (!m.has_value()) break;
    out.push_back(std::move(*m));
  }

  // Certified residual bound for the anytime-answer certificate. With
  // complete candidate lists the live pipeline bound is sound even after
  // a cancellation (StarSearch falls back to its a-priori cap), and the
  // monotone emission order lets the last emitted score tighten it. A
  // truncated scorer invalidates both (lists may be missing arbitrary
  // entries), leaving only the query-wide a-priori cap.
  if (scorer.truncated()) {
    stats_.residual_bound = scorer.ScoreUpperBound();
  } else {
    // With Prop. 3 pruning active (single-star k_hint), a claimed
    // exhaustion only means "nothing left could alter the top-k" — the
    // pruned tail still exists, so the stream's bound is not a bound on
    // it. Once the answer is full, the k-th score is (anything unemitted
    // ranks below it by definition).
    double residual = single && out.size() == k
                          ? out.back().score
                          : pipeline->UpperBound();
    if (!out.empty()) residual = std::min(residual, out.back().score);
    stats_.residual_bound = residual;
  }
  stats_.node_candidates = CollectNodeCandidateInfo(q, scorer);

  stats_.star_depths.clear();
  for (CachedStarStream* s : stream_ptrs) {
    stats_.star_depths.push_back(s->depth());
    stats_.total_depth += s->depth();
    stats_.search.Merge(s->stats());
    if (s->probed()) {
      s->cache_hit() ? ++stats_.star_cache_hits : ++stats_.star_cache_misses;
      if (s->resumed()) ++stats_.star_cache_resumes;
    }
  }
  // The scorer's own checkpoints (bulk scoring, candidate retrieval) can
  // observe an expiry that the search-level checkers miss; its sticky
  // truncation flag makes sure such a run is never reported complete.
  stats_.cancelled |= stats_.search.cancelled;
  for (const RankJoin* j : join_ptrs) stats_.cancelled |= j->cancelled();
  stats_.cancelled |= scorer.truncated();

  // Publish to the reuse cache — only when the whole run finished without
  // any cancellation anywhere, so a truncated partial (stream prefix or
  // candidate list) can never be replayed as the definitive answer.
  if (reuse != nullptr && !stats_.cancelled) {
    for (CachedStarStream* s : stream_ptrs) s->CommitToCache();
    for (int u = 0; u < q.node_count(); ++u) {
      if (seeded[u]) continue;
      if (const auto* list = scorer.CandidatesIfReady(u)) {
        // The memoized list is arena-backed; the cache needs an owning
        // heap copy that survives the arena reset.
        reuse->InsertCandidates(
            node_keys[u],
            std::vector<scoring::ScoredCandidate>(list->begin(), list->end()),
            generation);
        ++stats_.candidate_lists_inserted;
      }
    }
  }
  return out;
}

}  // namespace star::core
