#ifndef STAR_CORE_TOPK_UTILS_H_
#define STAR_CORE_TOPK_UTILS_H_

#include <cstddef>
#include <vector>

namespace star::core {

/// Lemma 2 [18]: selects the k largest values of `values` in O(n) (plus
/// O(k log k) to sort them). Returns the selected values sorted descending.
std::vector<double> TopKValues(std::vector<double> values, size_t k);

/// One scored leaf-list entry used by Prop. 3 pruning.
struct ListEntry {
  size_t index = 0;  // position in the original list (caller-defined id)
  double value = 0.0;
};

/// Proposition 3: given s unsorted lists and the aggregation
/// F = sum_i x_i (one element per list), at most k+s-1 elements of the
/// union can contribute to the top-k values of F: each list's maximum plus
/// the k-1 best remaining elements by "deficit" x - max(L_i).
///
/// Prunes each list in place to exactly that set (ties kept, so slightly
/// more may survive). O(sum |L_i|) time. Empty lists are left empty.
void PruneListsProp3(std::vector<std::vector<ListEntry>>& lists, size_t k);

/// Injective variant: when list elements carry node identities and a valid
/// assignment must use distinct nodes, an exchange argument shows any
/// element of a top-k valid assignment lies within the top k+s-1 of its own
/// list. Prunes each list to its top k+s-1 elements (by value). O(sum|L_i|).
void PruneListsPerList(std::vector<std::vector<ListEntry>>& lists, size_t k);

}  // namespace star::core

#endif  // STAR_CORE_TOPK_UTILS_H_
