#include "core/decomposition.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/random.h"

namespace star::core {

using query::QueryGraph;
using query::StarQuery;

namespace {

/// Partitions the query edges among the chosen pivots: edges covered by a
/// single pivot are forced; edges with both endpoints chosen go to the
/// currently smaller star (balance). Guarantees no empty star by stealing
/// a shared edge when possible.
std::vector<StarQuery> AssignEdges(const QueryGraph& q,
                                   const std::vector<int>& pivots) {
  std::vector<int> star_of_pivot(q.node_count(), -1);
  std::vector<StarQuery> stars(pivots.size());
  for (size_t i = 0; i < pivots.size(); ++i) {
    stars[i].pivot = pivots[i];
    star_of_pivot[pivots[i]] = static_cast<int>(i);
  }
  std::vector<int> shared_edges;
  for (int e = 0; e < q.edge_count(); ++e) {
    const int su = star_of_pivot[q.edge(e).u];
    const int sv = star_of_pivot[q.edge(e).v];
    if (su >= 0 && sv >= 0) {
      shared_edges.push_back(e);
    } else if (su >= 0) {
      stars[su].edges.push_back(e);
    } else if (sv >= 0) {
      stars[sv].edges.push_back(e);
    }
    // Uncovered edges are the caller's bug; IsValidDecomposition catches it.
  }
  for (const int e : shared_edges) {
    const int su = star_of_pivot[q.edge(e).u];
    const int sv = star_of_pivot[q.edge(e).v];
    const int target =
        stars[su].edges.size() <= stars[sv].edges.size() ? su : sv;
    stars[target].edges.push_back(e);
  }
  // Repair empty stars (a pivot all of whose edges went to neighbors):
  // move back one shared edge incident to it from a star with >= 2 edges.
  for (auto& s : stars) {
    if (!s.edges.empty()) continue;
    for (auto& donor : stars) {
      if (donor.edges.size() < 2) continue;
      const auto it = std::find_if(
          donor.edges.begin(), donor.edges.end(), [&](int e) {
            return q.edge(e).u == s.pivot || q.edge(e).v == s.pivot;
          });
      if (it != donor.edges.end()) {
        s.edges.push_back(*it);
        donor.edges.erase(it);
        break;
      }
    }
  }
  // Drop stars that are still empty (redundant pivots in non-minimal
  // covers).
  std::erase_if(stars, [](const StarQuery& s) { return s.edges.empty(); });
  return stars;
}

std::vector<StarQuery> GreedyCover(const QueryGraph& q, bool randomize,
                                   Rng& rng) {
  std::vector<bool> covered(q.edge_count(), false);
  int remaining = q.edge_count();
  std::vector<int> pivots;
  std::vector<bool> is_pivot(q.node_count(), false);
  while (remaining > 0) {
    int best = -1;
    int best_uncovered = -1;
    if (randomize) {
      // Random node among those with uncovered incident edges.
      std::vector<int> eligible;
      for (int u = 0; u < q.node_count(); ++u) {
        if (is_pivot[u]) continue;
        for (const int e : q.IncidentEdges(u)) {
          if (!covered[e]) {
            eligible.push_back(u);
            break;
          }
        }
      }
      best = eligible[rng.Below(eligible.size())];
    } else {
      for (int u = 0; u < q.node_count(); ++u) {
        if (is_pivot[u]) continue;
        int uncovered = 0;
        for (const int e : q.IncidentEdges(u)) uncovered += !covered[e];
        if (uncovered > best_uncovered) {
          best_uncovered = uncovered;
          best = u;
        }
      }
    }
    is_pivot[best] = true;
    pivots.push_back(best);
    for (const int e : q.IncidentEdges(best)) {
      if (!covered[e]) {
        covered[e] = true;
        --remaining;
      }
    }
  }
  return AssignEdges(q, pivots);
}

/// Per-query-node candidate statistics used by SimTop / SimDec. The
/// scorer's (memoized) candidate lists double as the paper's samples.
struct NodeStats {
  double top1 = 0.0;
  size_t count = 0;
};

NodeStats StatsFor(const QueryGraph& q, int u, scoring::QueryScorer* scorer) {
  NodeStats st;
  if (scorer == nullptr) return st;
  if (q.node(u).wildcard) {
    st.top1 = scorer->config().wildcard_node_score;
    st.count = scorer->graph().node_count();
    return st;
  }
  const auto& cands = scorer->Candidates(u);
  st.count = cands.size();
  st.top1 = cands.empty() ? 0.0 : cands[0].score;
  return st;
}

/// Feature and decrement values of one star under a strategy (§VI-B).
struct StarFeatures {
  double feature = 0.0;
  double decrement = 0.0;
};

StarFeatures FeaturesFor(const QueryGraph& q, const StarQuery& s,
                         DecompositionStrategy strategy,
                         const DecompositionOptions& options,
                         scoring::QueryScorer* scorer,
                         const std::vector<NodeStats>& stats) {
  StarFeatures out;
  switch (strategy) {
    case DecompositionStrategy::kSimSize:
      out.feature = static_cast<double>(s.edges.size());
      break;
    case DecompositionStrategy::kSimTop:
      out.feature = stats[s.pivot].top1;
      break;
    case DecompositionStrategy::kSimDec: {
      if (scorer == nullptr) break;
      // n_i ~= p^(|V*|-1) * prod_v n_v, capped by the pivot's sample size;
      // delta = (F(top1) - F(top n_i)) / n_i over the pivot's sampled
      // candidate scores.
      double expected = 1.0;
      for (const int e : s.edges) {
        const int leaf = q.OtherEnd(e, s.pivot);
        expected *= options.connectivity_p *
                    std::max<double>(1.0, static_cast<double>(stats[leaf].count));
      }
      expected *= std::max<double>(1.0, static_cast<double>(stats[s.pivot].count));
      const auto& cands = scorer->Candidates(s.pivot);
      if (!q.node(s.pivot).wildcard && !cands.empty()) {
        const size_t n_i = std::clamp<size_t>(
            static_cast<size_t>(expected), 1, cands.size());
        out.decrement = (cands[0].score - cands[n_i - 1].score) /
                        static_cast<double>(n_i);
      }
      out.feature = out.decrement;
      break;
    }
    default:
      break;
  }
  return out;
}

/// Eq. 5 objective: sum of decrements minus lambda * total feature spread.
double ObjectiveFor(const QueryGraph& q, const std::vector<StarQuery>& stars,
                    DecompositionStrategy strategy,
                    const DecompositionOptions& options,
                    scoring::QueryScorer* scorer,
                    const std::vector<NodeStats>& stats) {
  std::vector<StarFeatures> f;
  f.reserve(stars.size());
  for (const auto& s : stars) {
    f.push_back(FeaturesFor(q, s, strategy, options, scorer, stats));
  }
  double mean = 0.0;
  for (const auto& x : f) mean += x.feature;
  mean /= std::max<size_t>(1, f.size());
  double objective = 0.0;
  for (const auto& x : f) {
    objective += x.decrement - options.lambda_tradeoff * std::abs(x.feature - mean);
  }
  return objective;
}

}  // namespace

std::vector<StarQuery> DecomposeQuery(const QueryGraph& q,
                                      const DecompositionOptions& options,
                                      scoring::QueryScorer* scorer) {
  if (q.edge_count() == 0) {
    return {StarQuery{0, {}}};
  }
  if (q.IsStar()) {
    StarQuery s;
    s.pivot = q.StarPivot();
    s.edges = q.IncidentEdges(s.pivot);
    return {s};
  }

  Rng rng(options.seed);
  switch (options.strategy) {
    case DecompositionStrategy::kRand:
      return GreedyCover(q, /*randomize=*/true, rng);
    case DecompositionStrategy::kMaxDeg:
      return GreedyCover(q, /*randomize=*/false, rng);
    default:
      break;
  }

  const int n = q.node_count();
  if (n > options.max_enumeration_nodes) {
    return GreedyCover(q, /*randomize=*/false, rng);
  }

  // Shared candidate statistics (the paper's sampled node-match scores).
  std::vector<NodeStats> stats(n);
  if (options.strategy != DecompositionStrategy::kSimSize) {
    for (int u = 0; u < n; ++u) stats[u] = StatsFor(q, u, scorer);
  }

  // Enumerate vertex covers by increasing size m (the "minimum m"
  // constraint of Eq. 5); among the minimum-size covers pick the best
  // Eq. 5 objective.
  for (int m = 1; m <= n; ++m) {
    std::vector<StarQuery> best;
    double best_objective = -std::numeric_limits<double>::infinity();
    // Enumerate all (n choose m) subsets via combination walking.
    std::vector<int> pick(m);
    std::iota(pick.begin(), pick.end(), 0);
    while (true) {
      // Cover check.
      uint64_t mask = 0;
      for (const int u : pick) mask |= uint64_t{1} << u;
      bool covers = true;
      for (int e = 0; e < q.edge_count(); ++e) {
        if (!((mask >> q.edge(e).u) & 1) && !((mask >> q.edge(e).v) & 1)) {
          covers = false;
          break;
        }
      }
      if (covers) {
        std::vector<StarQuery> stars = AssignEdges(q, pick);
        const double obj = ObjectiveFor(q, stars, options.strategy, options,
                                        scorer, stats);
        if (obj > best_objective) {
          best_objective = obj;
          best = std::move(stars);
        }
      }
      // Next combination.
      int i = m - 1;
      while (i >= 0 && pick[i] == n - m + i) --i;
      if (i < 0) break;
      ++pick[i];
      for (int j = i + 1; j < m; ++j) pick[j] = pick[j - 1] + 1;
    }
    if (!best.empty()) return best;
  }
  // Unreachable for connected graphs (the all-nodes set always covers).
  return GreedyCover(q, /*randomize=*/false, rng);
}

bool IsValidDecomposition(const QueryGraph& q,
                          const std::vector<query::StarQuery>& stars) {
  if (q.edge_count() == 0) {
    return stars.size() == 1 && stars[0].edges.empty() &&
           stars[0].pivot >= 0 && stars[0].pivot < q.node_count();
  }
  std::vector<int> cover_count(q.edge_count(), 0);
  for (const auto& s : stars) {
    if (s.pivot < 0 || s.pivot >= q.node_count()) return false;
    if (s.edges.empty()) return false;
    for (const int e : s.edges) {
      if (e < 0 || e >= q.edge_count()) return false;
      if (q.edge(e).u != s.pivot && q.edge(e).v != s.pivot) return false;
      ++cover_count[e];
    }
  }
  return std::all_of(cover_count.begin(), cover_count.end(),
                     [](int c) { return c == 1; });
}

}  // namespace star::core
