#include "core/tuning.h"

#include <limits>

namespace star::core {

TuningResult TuneParameters(StarFramework& framework,
                            const std::vector<query::QueryGraph>& workload,
                            const TuningOptions& options) {
  TuningResult best;
  size_t best_depth = std::numeric_limits<size_t>::max();
  for (const double alpha : options.alpha_grid) {
    for (const double lambda : options.lambda_grid) {
      framework.mutable_options().alpha = alpha;
      framework.mutable_options().decomposition.lambda_tradeoff = lambda;
      size_t depth = 0;
      for (const auto& q : workload) {
        framework.TopK(q, options.k);
        depth += framework.last_stats().total_depth;
      }
      best.grid_depths.push_back(depth);
      if (depth < best_depth) {
        best_depth = depth;
        best.alpha = alpha;
        best.lambda_tradeoff = lambda;
      }
    }
  }
  best.total_depth = best_depth;
  framework.mutable_options().alpha = best.alpha;
  framework.mutable_options().decomposition.lambda_tradeoff =
      best.lambda_tradeoff;
  return best;
}

}  // namespace star::core
