#ifndef STAR_CORE_REUSE_CACHE_H_
#define STAR_CORE_REUSE_CACHE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "core/match.h"
#include "scoring/query_scorer.h"

namespace star::core {

/// A memoized star match stream: the first matches of one canonical star
/// in emission order, plus the engine's upper bound BETWEEN each pair of
/// pulls. bounds has matches->size() + 1 entries — bounds[i] is
/// StarSearch::UpperBound() after exactly i matches were emitted. Replay
/// surfaces these recorded bounds so a rank join driven by a warm stream
/// takes bit-for-bit the same pull/emit decisions as one driven cold.
struct StarTopList {
  std::shared_ptr<const std::vector<StarMatch>> matches;
  std::shared_ptr<const std::vector<double>> bounds;
  /// True when the stream was drained: matches is the COMPLETE result of
  /// the star, not just a prefix.
  bool exhausted = false;
};

/// Cross-query reuse cache consumed by the engine (StarFramework /
/// CachedStarStream) and implemented by the serving layer
/// (serve::StarCache). Two sections, both keyed by full signature strings
/// (configuration fingerprint + canonical signature — lookups compare the
/// whole key, never a hash alone):
///
///  - candidate lists: the scorer's complete, sorted candidate list for
///    one (node attributes, config) pair;
///  - star top-lists: memoized match-stream prefixes per canonical star.
///
/// Generation contract (same as serve::ResultCache): callers capture
/// generation() before computing, pass it to Insert*, and the
/// implementation drops inserts whose generation is stale. An
/// implementation must only ever return values inserted under the SAME
/// graph / ensemble / index it is being probed for — in practice a cache
/// instance is owned by one QueryService and never outlives its data.
///
/// Thread safety: implementations must be safe for concurrent calls.
class ReuseCache {
 public:
  virtual ~ReuseCache() = default;

  virtual uint64_t generation() const = 0;

  /// The complete candidate list stored under `key`, or nullptr.
  virtual std::shared_ptr<const std::vector<scoring::ScoredCandidate>>
  LookupCandidates(std::string_view key) = 0;

  /// Stores a COMPLETE (non-truncated) candidate list. Dropped if
  /// `generation` is stale.
  virtual void InsertCandidates(std::string_view key,
                                std::vector<scoring::ScoredCandidate> list,
                                uint64_t generation) = 0;

  /// The memoized stream prefix stored under `key`, or nullopt.
  virtual std::optional<StarTopList> LookupStarTopList(std::string_view key) = 0;

  /// Stores a stream prefix (bounds.size() must be matches.size() + 1).
  /// Implementations keep the deeper of the stored and offered entries.
  /// Dropped if `generation` is stale.
  virtual void InsertStarTopList(std::string_view key,
                                 std::vector<StarMatch> matches,
                                 std::vector<double> bounds, bool exhausted,
                                 uint64_t generation) = 0;
};

}  // namespace star::core

#endif  // STAR_CORE_REUSE_CACHE_H_
