#ifndef STAR_CORE_DECOMPOSITION_H_
#define STAR_CORE_DECOMPOSITION_H_

#include <cstdint>
#include <vector>

#include "query/query_graph.h"
#include "scoring/query_scorer.h"

namespace star::core {

/// Query-decomposition heuristics of §VI-B. A decomposition is a set of
/// star subqueries whose pivots form a vertex cover of the query graph and
/// whose edge sets partition E_Q.
enum class DecompositionStrategy {
  /// Baseline: random pivots until all edges are covered.
  kRand,
  /// Baseline: greedily pick the pivot with the most uncovered edges.
  kMaxDeg,
  /// Eq. 5 with f(Q*_i) = |E*_i| (star size) — balanced edge partition.
  kSimSize,
  /// Eq. 5 with f(Q*_i) = sampled top-1 pivot match score.
  kSimTop,
  /// Eq. 5 with the sampled average score-decrement feature.
  kSimDec,
};

struct DecompositionOptions {
  DecompositionStrategy strategy = DecompositionStrategy::kSimDec;
  /// Eq. 5's trade-off λ between score decrement and feature spread.
  double lambda_tradeoff = 1.0;
  /// Node matches sampled per pivot for SimTop/SimDec (§VII: 200).
  size_t sample_size = 200;
  /// Edge-connectivity probability p used by SimDec's n_i estimate
  /// (estimated offline in the paper; 4.5e-4 there).
  double connectivity_p = 4.5e-4;
  uint64_t seed = 7;
  /// Queries with more nodes than this fall back from exhaustive
  /// vertex-cover enumeration to the greedy cover (stars stay valid).
  int max_enumeration_nodes = 16;
};

/// Decomposes q into star subqueries. `scorer` is required for kSimTop and
/// kSimDec (it provides sampled candidate scores); other strategies ignore
/// it. Star queries (q.IsStar()) always decompose into the single star.
std::vector<query::StarQuery> DecomposeQuery(const query::QueryGraph& q,
                                             const DecompositionOptions& options,
                                             scoring::QueryScorer* scorer);

/// True if `stars` is a valid decomposition of q: every star's edges are
/// incident to its pivot, every query edge is covered exactly once, and no
/// star is empty (except a single pivot-only star for edgeless queries).
bool IsValidDecomposition(const query::QueryGraph& q,
                          const std::vector<query::StarQuery>& stars);

}  // namespace star::core

#endif  // STAR_CORE_DECOMPOSITION_H_
