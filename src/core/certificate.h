#ifndef STAR_CORE_CERTIFICATE_H_
#define STAR_CORE_CERTIFICATE_H_

#include <cstddef>
#include <limits>

namespace star::core {

/// A machine-checkable quality statement attached to a (possibly
/// truncated or degraded) top-k answer. Both fields are derived from the
/// live star-stream / rank-join upper bounds (Eq. 4): at any prefix the
/// pipeline's threshold quantifies exactly "how wrong can rank k+1 be",
/// and the serving layer folds in the degradation drop bounds (DESIGN.md
/// "Graceful degradation").
///
/// Soundness contract (what the oracle-graded harness verifies):
///  - every valid match of the query under the service's NOMINAL
///    configuration that is not among the first `guaranteed_prefix`
///    returned matches scores <= `score_bound`;
///  - the first `guaranteed_prefix` returned matches are bitwise equal to
///    the exact top-`guaranteed_prefix` of the nominal configuration.
struct QualityCertificate {
  /// Leading returned matches guaranteed bitwise equal to the exact
  /// top-k prefix (mapping and score bits). 0 claims nothing.
  size_t guaranteed_prefix = 0;

  /// Certified upper bound on the score of any valid match not among the
  /// guaranteed prefix: the max score deficit a consumer can suffer at
  /// rank guaranteed_prefix+1. -inf when the search space was exhausted
  /// (the answer is provably complete); +inf when nothing was computed
  /// (e.g. a request that expired while queued).
  double score_bound = std::numeric_limits<double>::infinity();

  /// True iff the response is the exact, complete top-k under the nominal
  /// configuration (level 0, no cancellation anywhere).
  bool exact = false;

  /// Shedding ladder level the answer was computed at (0 = nominal; see
  /// serve::DegradePolicy). Recorded so cache layers can refuse to serve
  /// a degraded answer to a stricter request.
  int degradation_level = 0;
};

}  // namespace star::core

#endif  // STAR_CORE_CERTIFICATE_H_
