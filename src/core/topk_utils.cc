#include "core/topk_utils.h"

#include <algorithm>
#include <functional>

namespace star::core {

std::vector<double> TopKValues(std::vector<double> values, size_t k) {
  if (k == 0) return {};
  if (values.size() > k) {
    std::nth_element(values.begin(), values.begin() + k - 1, values.end(),
                     std::greater<double>());
    values.resize(k);
  }
  std::sort(values.begin(), values.end(), std::greater<double>());
  return values;
}

void PruneListsProp3(std::vector<std::vector<ListEntry>>& lists, size_t k) {
  const size_t s = lists.size();
  if (s == 0 || k == 0) return;
  // Per-list maxima.
  std::vector<double> maxima(s);
  for (size_t i = 0; i < s; ++i) {
    if (lists[i].empty()) {
      maxima[i] = 0.0;
      continue;
    }
    double mx = lists[i][0].value;
    for (const ListEntry& e : lists[i]) mx = std::max(mx, e.value);
    maxima[i] = mx;
  }
  // Deficits of all non-maximum slots. One occurrence of the maximum per
  // list is exempt (it is always kept).
  std::vector<double> deficits;
  for (size_t i = 0; i < s; ++i) {
    bool max_seen = false;
    for (const ListEntry& e : lists[i]) {
      if (!max_seen && e.value == maxima[i]) {
        max_seen = true;
        continue;
      }
      deficits.push_back(e.value - maxima[i]);
    }
  }
  double cutoff;  // keep deficits >= cutoff
  if (deficits.size() < k) {
    cutoff = deficits.empty()
                 ? 0.0
                 : *std::min_element(deficits.begin(), deficits.end());
  } else {
    // (k-1) largest deficits survive; cutoff = (k-1)-th largest (ties kept).
    if (k == 1) {
      // No extra elements beyond the maxima.
      for (size_t i = 0; i < s; ++i) {
        std::vector<ListEntry> kept;
        bool max_kept = false;
        for (const ListEntry& e : lists[i]) {
          if (!max_kept && e.value == maxima[i]) {
            kept.push_back(e);
            max_kept = true;
          }
        }
        lists[i] = std::move(kept);
      }
      return;
    }
    std::nth_element(deficits.begin(), deficits.begin() + (k - 2),
                     deficits.end(), std::greater<double>());
    cutoff = deficits[k - 2];
  }
  for (size_t i = 0; i < s; ++i) {
    std::vector<ListEntry> kept;
    bool max_kept = false;
    for (const ListEntry& e : lists[i]) {
      if (!max_kept && e.value == maxima[i]) {
        kept.push_back(e);
        max_kept = true;
      } else if (e.value - maxima[i] >= cutoff) {
        kept.push_back(e);
      }
    }
    lists[i] = std::move(kept);
  }
}

void PruneListsPerList(std::vector<std::vector<ListEntry>>& lists, size_t k) {
  const size_t s = lists.size();
  const size_t keep = k + (s > 0 ? s - 1 : 0);
  for (auto& list : lists) {
    if (list.size() <= keep) continue;
    std::nth_element(list.begin(), list.begin() + keep - 1, list.end(),
                     [](const ListEntry& a, const ListEntry& b) {
                       return a.value > b.value;
                     });
    list.resize(keep);
  }
}

}  // namespace star::core
