#include "core/explain.h"

#include <algorithm>
#include <unordered_set>

namespace star::core {

using graph::KnowledgeGraph;
using graph::Neighbor;
using graph::NodeId;

namespace {

/// Finds a walk of exactly `hops` steps from a to b (guaranteed to exist
/// when FirstWalkLength reported it): forward walk-layer sets, then a
/// backward trace picking any predecessor in the previous layer.
std::vector<NodeId> ReconstructWalk(const KnowledgeGraph& g, NodeId a,
                                    NodeId b, int hops) {
  // layers[h] = nodes reachable by a walk of exactly h steps.
  std::vector<std::unordered_set<NodeId>> layers(hops + 1);
  layers[0].insert(a);
  for (int h = 1; h <= hops; ++h) {
    for (const NodeId x : layers[h - 1]) {
      for (const Neighbor& nb : g.Neighbors(x)) layers[h].insert(nb.node);
    }
  }
  std::vector<NodeId> path(hops + 1, graph::kInvalidNode);
  path[hops] = b;
  for (int h = hops; h > 0; --h) {
    // Any neighbor of path[h] inside layers[h-1] works.
    for (const Neighbor& nb : g.Neighbors(path[h])) {
      if (layers[h - 1].count(nb.node)) {
        path[h - 1] = nb.node;
        break;
      }
    }
    if (path[h - 1] == graph::kInvalidNode) return {};  // defensive
  }
  return path;
}

}  // namespace

Result<MatchExplanation> ExplainMatch(scoring::QueryScorer& scorer,
                                      const GraphMatch& match) {
  const auto& q = scorer.query();
  const KnowledgeGraph& g = scorer.graph();
  if (static_cast<int>(match.mapping.size()) != q.node_count() ||
      !match.Complete()) {
    return Status::FailedPrecondition("match does not map every query node");
  }
  MatchExplanation out;
  for (int u = 0; u < q.node_count(); ++u) {
    const double fn = scorer.NodeScore(u, match.mapping[u]);
    out.nodes.push_back({u, match.mapping[u], fn});
    out.total += fn;
  }
  for (int e = 0; e < q.edge_count(); ++e) {
    const NodeId a = match.mapping[q.edge(e).u];
    const NodeId b = match.mapping[q.edge(e).v];
    const double fe = scorer.PairEdgeScore(e, a, b);
    if (fe < 0.0) {
      return Status::FailedPrecondition(
          "query edge " + std::to_string(e) +
          " has no valid connection between the mapped nodes");
    }
    EdgeExplanation ee;
    ee.query_edge = e;
    ee.score = fe;
    // Which option achieved the max: the direct edge or a multi-hop walk?
    double direct = -1.0;
    for (const Neighbor& nb : g.Neighbors(a)) {
      if (nb.node != b) continue;
      direct = std::max(direct, scorer.RelationScore(e, nb.relation));
    }
    if (direct >= fe - 1e-12 && direct >= 0.0) {
      ee.path = {a, b};
    } else {
      const int hops = scorer.FirstWalkLength(a, b);
      ee.path = ReconstructWalk(g, a, b, hops);
    }
    out.total += fe;
    out.edges.push_back(std::move(ee));
  }
  return out;
}

std::string FormatExplanation(const scoring::QueryScorer& scorer,
                              const MatchExplanation& explanation) {
  const auto& q = scorer.query();
  const KnowledgeGraph& g = scorer.graph();
  std::string out;
  char buf[256];
  for (const auto& n : explanation.nodes) {
    const auto& qn = q.node(n.query_node);
    const std::string_view gl = g.NodeLabel(n.node);
    std::snprintf(buf, sizeof(buf), "  node %-14s -> %-24.*s F_N=%.3f\n",
                  qn.wildcard ? "?" : qn.label.c_str(),
                  static_cast<int>(gl.size()), gl.data(), n.score);
    out += buf;
  }
  for (const auto& e : explanation.edges) {
    out += "  edge";
    if (!q.edge(e.query_edge).wildcard_relation) {
      out += " [" + q.edge(e.query_edge).relation + "]";
    }
    out += " ";
    for (size_t i = 0; i < e.path.size(); ++i) {
      if (i > 0) out += " ~ ";
      out += g.NodeLabel(e.path[i]);
    }
    std::snprintf(buf, sizeof(buf), "  (%zu hop%s, F_E=%.3f)\n",
                  e.path.size() - 1, e.path.size() == 2 ? "" : "s", e.score);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "  total %.3f\n", explanation.total);
  out += buf;
  return out;
}

}  // namespace star::core
