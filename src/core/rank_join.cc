#include "core/rank_join.h"

#include <algorithm>
#include <limits>

namespace star::core {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
}  // namespace

// ---------------------------------------------------------------------------
// StarMatchStream
// ---------------------------------------------------------------------------

StarMatchStream::StarMatchStream(std::unique_ptr<StarSearch> search)
    : search_(std::move(search)) {
  // Derive the covered-node mask by converting a placeholder star match:
  // exactly the pivot's and the leaves' query-node slots get mapped.
  StarMatch probe;
  probe.pivot = 0;
  probe.leaves.assign(search_->star().edges.size(), 0);
  const GraphMatch gm = search_->ToGraphMatch(probe);
  for (size_t u = 0; u < gm.mapping.size(); ++u) {
    if (gm.mapping[u] != graph::kInvalidNode) covered_ |= uint64_t{1} << u;
  }
}

std::optional<GraphMatch> StarMatchStream::Next() {
  auto m = search_->Next();
  if (!m.has_value()) return std::nullopt;
  ++depth_;
  return search_->ToGraphMatch(*m);
}

double StarMatchStream::UpperBound() const { return search_->UpperBound(); }

// ---------------------------------------------------------------------------
// CachedStarStream
// ---------------------------------------------------------------------------

CachedStarStream::CachedStarStream(scoring::QueryScorer& scorer,
                                   query::StarQuery star,
                                   StarSearch::Options options,
                                   ReuseCache* cache, std::string key,
                                   uint64_t generation)
    : CachedStarStream(std::make_unique<StarSearch>(scorer, std::move(star),
                                                    std::move(options)),
                       cache, std::move(key), generation) {}

CachedStarStream::CachedStarStream(std::unique_ptr<StarStreamEngine> engine,
                                   ReuseCache* cache, std::string key,
                                   uint64_t generation)
    : cache_(cache),
      key_(std::move(key)),
      generation_(generation),
      search_(std::move(engine)) {
  StarMatch probe;
  probe.pivot = 0;
  probe.leaves.assign(search_->star().edges.size(), 0);
  const GraphMatch gm = search_->ToGraphMatch(probe);
  for (size_t u = 0; u < gm.mapping.size(); ++u) {
    if (gm.mapping[u] != graph::kInvalidNode) covered_ |= uint64_t{1} << u;
  }
  if (probed()) {
    entry_ = cache_->LookupStarTopList(key_);
    // A malformed entry (bounds not aligned with matches) can never replay
    // faithfully; treat it as a miss rather than trusting it.
    if (entry_.has_value() &&
        (entry_->matches == nullptr || entry_->bounds == nullptr ||
         entry_->bounds->size() != entry_->matches->size() + 1)) {
      entry_.reset();
    }
  }
}

std::optional<GraphMatch> CachedStarStream::Next() {
  if (entry_.has_value()) {
    const auto& cached = *entry_->matches;
    if (pos_ < cached.size()) {
      ++depth_;
      return search_->ToGraphMatch(cached[pos_++]);
    }
    if (entry_->exhausted) return std::nullopt;
    if (!resumed_) {
      // The consumer outran the recording: fast-forward the cold engine
      // past the replayed prefix (the engine is deterministic per
      // canonical star, so discarded pull i is exactly cached[i]) and
      // carry the recording forward from there.
      resumed_ = true;
      record_matches_ = cached;
      record_bounds_ = *entry_->bounds;
      for (size_t i = 0; i < cached.size(); ++i) {
        if (!search_->Next().has_value()) break;  // cancelled mid-skip
      }
    }
  }
  return LivePull();
}

std::optional<GraphMatch> CachedStarStream::LivePull() {
  if (probed() && record_bounds_.size() == depth_) {
    // The engine bound after depth_ pulls — the value a consumer reads
    // between this pull and the previous one. Replays surface exactly
    // these recorded bounds so warm rank joins take identical decisions.
    record_bounds_.push_back(search_->UpperBound());
  }
  auto m = search_->Next();
  if (!m.has_value()) {
    if (!search_->stats().cancelled) live_exhausted_ = true;
    return std::nullopt;
  }
  if (probed()) record_matches_.push_back(*m);
  ++depth_;
  return search_->ToGraphMatch(*m);
}

double CachedStarStream::UpperBound() const {
  if (entry_.has_value() && !resumed_) {
    return (*entry_->bounds)[pos_];
  }
  return search_->UpperBound();
}

void CachedStarStream::CommitToCache() {
  if (!probed()) return;
  if (entry_.has_value() && !resumed_) return;  // nothing new learned
  if (record_matches_.empty() && !live_exhausted_) return;
  if (record_bounds_.size() == record_matches_.size()) {
    record_bounds_.push_back(search_->UpperBound());
  }
  // An interrupted fast-forward can leave the recording misaligned with
  // the bounds; such a recording can never replay faithfully, so drop it.
  if (record_bounds_.size() != record_matches_.size() + 1) return;
  cache_->InsertStarTopList(key_, std::move(record_matches_),
                            std::move(record_bounds_), live_exhausted_,
                            generation_);
}

// ---------------------------------------------------------------------------
// RankJoin
// ---------------------------------------------------------------------------

RankJoin::RankJoin(std::unique_ptr<CoveredMatchIterator> left,
                   std::unique_ptr<CoveredMatchIterator> right,
                   bool enforce_injective, const Cancellation* cancel,
                   std::pmr::memory_resource* mem)
    : enforce_injective_(enforce_injective),
      cancel_check_(cancel),
      results_(ResultOrder{},
               std::pmr::vector<GraphMatch>(
                   mem != nullptr ? mem : std::pmr::get_default_resource())) {
  left_.input = std::move(left);
  right_.input = std::move(right);
  covered_ = left_.input->covered_mask() | right_.input->covered_mask();
  const uint64_t shared =
      left_.input->covered_mask() & right_.input->covered_mask();
  for (int u = 0; u < 64; ++u) {
    if (shared & (uint64_t{1} << u)) shared_nodes_.push_back(u);
  }
}

std::string RankJoin::JoinKey(const GraphMatch& m) const {
  std::string key;
  key.reserve(shared_nodes_.size() * sizeof(graph::NodeId));
  for (const int u : shared_nodes_) {
    const graph::NodeId v = m.mapping[u];
    key.append(reinterpret_cast<const char*>(&v), sizeof(v));
  }
  return key;
}

std::optional<GraphMatch> RankJoin::Combine(const GraphMatch& a,
                                            const GraphMatch& b) const {
  GraphMatch out;
  out.mapping.assign(std::max(a.mapping.size(), b.mapping.size()),
                     graph::kInvalidNode);
  for (size_t u = 0; u < out.mapping.size(); ++u) {
    const graph::NodeId va =
        u < a.mapping.size() ? a.mapping[u] : graph::kInvalidNode;
    const graph::NodeId vb =
        u < b.mapping.size() ? b.mapping[u] : graph::kInvalidNode;
    if (va != graph::kInvalidNode && vb != graph::kInvalidNode && va != vb) {
      return std::nullopt;  // conflicting shared assignment (key mismatch)
    }
    out.mapping[u] = va != graph::kInvalidNode ? va : vb;
  }
  if (enforce_injective_ && !out.Injective()) return std::nullopt;
  out.score = a.score + b.score;
  return out;
}

bool RankJoin::Pull(Side& self, Side& other) {
  if (self.exhausted || cancelled_) return false;
  auto m = self.input->Next();
  if (!m.has_value()) {
    if (self.input->cancelled()) {
      // The input stopped because it was cancelled, not because it ran
      // dry. Its unseen matches could still tie (or beat) buffered join
      // results, so marking it exhausted would drop its bound from the
      // threshold and emit those results out of canonical order — the
      // already-returned prefix would no longer be a prefix of the
      // complete run. Poison the join instead.
      cancelled_ = true;
      return false;
    }
    self.exhausted = true;
    return false;
  }
  ++self.pulled;
  if (!self.top_seen) {
    self.top_seen = true;
    self.top_score = m->score;
  }
  const std::string key = JoinKey(*m);
  // Probe the other side's table.
  const auto it = other.table.find(key);
  if (it != other.table.end()) {
    for (const GraphMatch& partner : it->second) {
      ++stats_.pairs_probed;
      auto joined = Combine(*m, partner);
      if (joined.has_value()) {
        ++stats_.results_formed;
        results_.push(std::move(*joined));
      }
    }
  }
  self.table[key].push_back(std::move(*m));
  return true;
}

double RankJoin::Threshold() const {
  // Eq. 4: an unseen join result pairs an unseen match from one side with
  // any (seen or unseen) match from the other. Before a side produced its
  // first match, its top is bounded by its UpperBound.
  const double left_ub = left_.exhausted ? kNegInf : left_.input->UpperBound();
  const double right_ub =
      right_.exhausted ? kNegInf : right_.input->UpperBound();
  const double left_top = left_.top_seen ? left_.top_score : left_ub;
  const double right_top = right_.top_seen ? right_.top_score : right_ub;
  double t = kNegInf;
  if (left_ub != kNegInf && right_top != kNegInf) {
    t = std::max(t, left_ub + right_top);
  }
  if (right_ub != kNegInf && left_top != kNegInf) {
    t = std::max(t, left_top + right_ub);
  }
  // Unseen x unseen pairs. While both streams are live and monotone this
  // term is dominated (each side's bound sits at or below its top seen
  // score), so Eq. 4 is unchanged — but after a cancellation an input's
  // bound may legitimately jump ABOVE its top (the a-priori fallback in
  // StarSearch::UpperBound), and with both sides in that state the two
  // classic terms understate. Certificate readers consume UpperBound()
  // from cancelled pipelines, so the threshold must stay sound there.
  if (left_ub != kNegInf && right_ub != kNegInf) {
    t = std::max(t, left_ub + right_ub);
  }
  return t;
}

std::optional<GraphMatch> RankJoin::Next() {
  while (true) {
    if (cancelled_ || cancel_check_.ShouldStop()) {
      // Buffered results below the threshold may be out of order relative
      // to unseen joins, so the stream simply ends here. cancelled_ may
      // already be set by Pull() observing a cancelled input — the
      // checkpoint's clock stride must not grant extra emissions then.
      cancelled_ = true;
      return std::nullopt;
    }
    const double threshold = Threshold();
    if (!results_.empty() && results_.top().score >= threshold) {
      GraphMatch out = results_.top();
      results_.pop();
      return out;
    }
    if (threshold == kNegInf) {
      // Both inputs exhausted; drain remaining buffered results.
      if (results_.empty()) return std::nullopt;
      GraphMatch out = results_.top();
      results_.pop();
      return out;
    }
    // Pull from the side that currently determines the larger part of the
    // threshold (the classic HRJN strategy), falling back to the other.
    const double left_ub = left_.exhausted ? kNegInf : left_.input->UpperBound();
    const double right_ub =
        right_.exhausted ? kNegInf : right_.input->UpperBound();
    const bool prefer_left = left_ub >= right_ub;
    if (prefer_left) {
      if (!Pull(left_, right_) && !Pull(right_, left_)) continue;
    } else {
      if (!Pull(right_, left_) && !Pull(left_, right_)) continue;
    }
    stats_.left_pulled = left_.pulled;
    stats_.right_pulled = right_.pulled;
  }
}

double RankJoin::UpperBound() const {
  double ub = Threshold();
  if (!results_.empty()) ub = std::max(ub, results_.top().score);
  return ub;
}

}  // namespace star::core
