#ifndef STAR_CORE_STAR_SEARCH_H_
#define STAR_CORE_STAR_SEARCH_H_

#include <cstddef>
#include <limits>
#include <memory>
#include <memory_resource>
#include <optional>
#include <queue>
#include <vector>

#include "common/deadline.h"
#include "core/match.h"
#include "core/pivot_enumerator.h"
#include "query/query_graph.h"
#include "scoring/query_scorer.h"

namespace star::core {

/// Which §V algorithm evaluates the star query.
enum class StarStrategy {
  /// stark (Fig. 5): the exact top-1 match is computed for *every* pivot
  /// candidate up front. For d >= 2 this performs a d-hop traversal per
  /// candidate — the cost the paper's Exp-1 measures.
  kStark,
  /// stard (§V-B): d rounds of message propagation produce (an upper bound
  /// on) each candidate's top-1 score; exact per-pivot enumeration runs
  /// only for pivots that can reach the top k ("lazy" refinement).
  kStard,
  /// The §V-C "alternative": pivot candidates are ranked by a cheap
  /// closed-form upper bound (pivot F_N plus, per leaf, the best leaf
  /// candidate score and best edge score) and exact per-pivot enumerators
  /// are built lazily in that order, stopping as soon as no unseen pivot
  /// can beat the best queued match. A TA-flavored middle ground: no
  /// message passing, but far fewer per-pivot traversals than stark when
  /// pivot F_N scores discriminate well.
  kHybrid,
};

/// Counters exposed for the benchmark harness.
struct StarSearchStats {
  size_t pivot_candidates = 0;
  size_t enumerators_built = 0;
  size_t messages_sent = 0;
  size_t nodes_expanded = 0;
  size_t matches_emitted = 0;
  /// Initialize() wall-clock time (the phase the parallel engine speeds
  /// up: candidate scoring + stark enumeration / stard propagation).
  double init_wall_ms = 0.0;
  /// Initialize() process-CPU time summed over all worker threads;
  /// init_cpu_ms / init_wall_ms approximates the cores kept busy.
  double init_cpu_ms = 0.0;

  /// Scoring-kernel activity during Initialize() (deltas of the scorer's
  /// KernelStats): F_N pairs pushed through the threshold-aware kernel,
  /// how many exited early, and feature evaluations performed vs skipped
  /// by the weight-ordered bound. All zero when the kernel is disabled.
  size_t fn_pairs_scored = 0;
  size_t fn_early_exits = 0;
  size_t fn_feature_evals = 0;
  size_t fn_features_skipped = 0;

  /// True if a cancellation checkpoint fired during this search: some
  /// phase wound down early, so emitted matches are a (still correctly
  /// ordered) prefix of the exact result. Never set without a
  /// Options::cancel token.
  bool cancelled = false;

  /// Accumulates the countable counters (wall/CPU times are summed too,
  /// so aggregate stats report totals across stars).
  void Merge(const StarSearchStats& o) {
    pivot_candidates += o.pivot_candidates;
    enumerators_built += o.enumerators_built;
    messages_sent += o.messages_sent;
    nodes_expanded += o.nodes_expanded;
    matches_emitted += o.matches_emitted;
    init_wall_ms += o.init_wall_ms;
    init_cpu_ms += o.init_cpu_ms;
    fn_pairs_scored += o.fn_pairs_scored;
    fn_early_exits += o.fn_early_exits;
    fn_feature_evals += o.fn_feature_evals;
    fn_features_skipped += o.fn_features_skipped;
    cancelled |= o.cancelled;
  }
};

/// Builds the StarQuery view of a whole star-shaped QueryGraph.
/// Precondition: q.IsStar().
query::StarQuery MakeStarQuery(const query::QueryGraph& q);

/// Reorders `star.edges` into the canonical execution order every
/// StarSearch uses internally (see the .cc comment): a pure function of
/// (query, star, node_weights), so independent processes derive the same
/// order — the sharded coordinator calls this to align worker-emitted
/// StarMatch::leaves with its own query-node mapping.
query::StarQuery CanonicalizeStarEdgeOrder(
    const query::QueryGraph& q, query::StarQuery star,
    const std::vector<double>& node_weights);

/// Abstract monotone star match stream: what a rank join (via
/// StarMatchStream / CachedStarStream) actually consumes from a star
/// engine. StarSearch is the single-process implementation; the sharded
/// coordinator's merged per-shard stream implements the same contract, so
/// every downstream layer (replay, reuse cache, joins) is engine-agnostic.
///
/// Contract: Next() emits matches in non-increasing score order (ties in
/// ascending pivot id); UpperBound() between pulls bounds every
/// not-yet-emitted match and never increases while the stream is live.
/// After a cancellation the emitted prefix stays valid, stats().cancelled
/// is set, and UpperBound() REMAINS a sound bound on every unseen match —
/// it may jump UP once at the moment of cancellation (a wound-down build
/// falls back to an a-priori cap), never down. Certificate readers rely
/// on this post-cancellation soundness.
class StarStreamEngine {
 public:
  virtual ~StarStreamEngine() = default;

  virtual std::optional<StarMatch> Next() = 0;
  virtual double UpperBound() = 0;
  virtual GraphMatch ToGraphMatch(const StarMatch& m) const = 0;
  virtual const query::StarQuery& star() const = 0;
  virtual const StarSearchStats& stats() const = 0;
};

/// Top-k evaluation of one star (sub)query. Emits matches in
/// non-increasing score order via Next(), which makes it directly usable
/// as a rank-join input (§VI). Both strategies produce identical results;
/// they differ only in how much work identifying the pivot set costs.
class StarSearch final : public StarStreamEngine {
 public:
  struct Options {
    StarStrategy strategy = StarStrategy::kStard;
    /// If > 0, per-pivot candidate lists are pruned for a top-k_hint
    /// workload (Prop. 3); pulling more than k_hint matches *pivoted at
    /// one node* is then not supported. 0 = no pruning (exact streams of
    /// any length, required by rank joins).
    size_t k_hint = 0;
    /// α-scheme ownership weights (§VI-A): node_weights[u] is the fraction
    /// of query node u's F_N that this star's ranking function owns. Empty
    /// = all 1 (standalone star query). Joining streams whose per-node
    /// weights sum to 1 yields exactly the Eq. 2 score.
    std::vector<double> node_weights;
    /// Cooperative cancellation (deadline and/or explicit cancel). When it
    /// fires, initialization phases wind down early and Next() reports
    /// exhaustion; matches already emitted remain valid, making the stream
    /// a prefix of the exact one. Must outlive the search. nullptr = run
    /// to completion.
    const Cancellation* cancel = nullptr;
    /// Optional pivot-ownership filter (sharded execution): when non-null,
    /// only pivot candidates p with (*pivot_owned)[p] != 0 enter the
    /// reserve — the stream emits exactly the owned-pivot subset of the
    /// unfiltered stream, in the same relative order, and UpperBound()
    /// bounds only that subset. Indexed by graph NodeId; must cover every
    /// node id and outlive the search.
    const std::vector<uint8_t>* pivot_owned = nullptr;
  };

  /// The scorer must outlive the search; `star.edges` must all be incident
  /// to `star.pivot` in scorer's query graph. Edges are internally
  /// reordered into canonical record order (query_canonical.h), so the
  /// emitted stream — scores, tie order, everything — is invariant under
  /// edge insertion order; star() reflects the reordering.
  StarSearch(scoring::QueryScorer& scorer, query::StarQuery star,
             Options options);

  /// The next-best match of the star, or nullopt when no more matches
  /// satisfy the thresholds. Scores never increase across calls.
  std::optional<StarMatch> Next() override;

  /// Upper bound on the score of any not-yet-returned match.
  double UpperBound() override;

  /// Convenience: the best k matches (Fig. 5's stark procedure).
  std::vector<StarMatch> TopK(size_t k);

  /// Expands a star match to a (partial) match of the full query graph.
  GraphMatch ToGraphMatch(const StarMatch& m) const override;

  const query::StarQuery& star() const override { return star_; }
  const StarSearchStats& stats() const override { return stats_; }

 private:
  struct ReserveEntry {
    double bound = 0.0;  // stark: exact top-1; stard: upper-bound estimate
    graph::NodeId pivot = graph::kInvalidNode;
    double pivot_score = 0.0;
    std::unique_ptr<PivotEnumerator> prebuilt;  // stark only
  };

  struct QueueEntry {
    double score;
    size_t enumerator_index;
    graph::NodeId pivot;
    // Score ties break toward the smaller pivot id (priority_queue pops
    // the largest element, so the comparison is inverted). This makes the
    // emitted stream the canonical (score desc, pivot asc) merge of the
    // per-pivot streams — the invariant the sharded coordinator relies on
    // to reproduce the stream from per-shard pivot subsets.
    bool operator<(const QueueEntry& o) const {
      if (score != o.score) return score < o.score;
      return pivot > o.pivot;
    }
  };

  double NodeWeight(int query_node) const {
    return options_.node_weights.empty()
               ? 1.0
               : options_.node_weights[query_node];
  }

  void Initialize();
  void InitializeStark();
  void InitializeStard();
  void InitializeHybrid();
  /// Moves reserve pivots into the active queue while one could beat the
  /// best queued match.
  void ActivateReserve();

  /// A-priori weighted star cap, independent of any candidate list:
  /// NodeWeight(u) * maxF_N(u) per star node (1.0 for label-scored nodes
  /// — Eq. 1 is normalized — or wildcard_node_score) plus MaxEdgeScore per
  /// edge. This bounds every match of the star no matter what a wound-down
  /// initialization failed to build, which makes UpperBound() sound after
  /// a cancellation: an interrupted InitializeStark/InitializeStard leaves
  /// a partial reserve, and an interrupted BuildEnumerator can stage a
  /// partial enumerator whose PeekScore understates — the structural
  /// queue/reserve maximum alone can then sit BELOW a real unseen match,
  /// which a certificate reader (shard coordinator bound aggregation,
  /// serve-layer QualityCertificate) must never observe.
  double AprioriBound();

  /// Exact per-pivot leaf lists via a depth-(d-1) BFS around the pivot
  /// (each leaf candidate w gets max over incident edges (x,w,r) with
  /// dist(v,x) = delta of NodeScore + RelationScore(r) * lambda^delta).
  /// Counters accumulate into `stats` — the parallel stark path passes a
  /// per-worker scratch struct and merges after the join, so the scorer
  /// must be warmed (WarmStarCaches) before concurrent calls. `mem` backs
  /// the traversal's frontier sets and per-leaf accumulation maps:
  /// owning-thread call sites pass the scorer's per-query arena resource,
  /// pool-worker call sites MUST pass the default resource (the arena is
  /// single-threaded).
  std::unique_ptr<PivotEnumerator> BuildEnumerator(
      graph::NodeId pivot, double pivot_score, StarSearchStats& stats,
      std::pmr::memory_resource* mem);

  scoring::QueryScorer& scorer_;
  query::StarQuery star_;
  Options options_;
  std::vector<int> leaf_nodes_;  // query node per star edge
  CancelChecker cancel_check_;   // owning-thread checkpoints

  bool initialized_ = false;
  std::vector<ReserveEntry> reserve_;  // sorted descending by bound
  size_t reserve_pos_ = 0;
  std::vector<std::unique_ptr<PivotEnumerator>> active_;
  std::priority_queue<QueueEntry> queue_;
  StarSearchStats stats_;
  /// Score of the last emitted match (+inf before the first emission).
  /// The stream is monotone, so after a pure search-level cancellation
  /// (complete candidate lists) this bounds every unseen match and
  /// tightens the a-priori cap in UpperBound().
  double last_emitted_score_ = std::numeric_limits<double>::infinity();
  bool apriori_ready_ = false;
  double apriori_bound_ = 0.0;
};

}  // namespace star::core

#endif  // STAR_CORE_STAR_SEARCH_H_
