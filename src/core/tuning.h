#ifndef STAR_CORE_TUNING_H_
#define STAR_CORE_TUNING_H_

#include <vector>

#include "core/framework.h"
#include "query/query_graph.h"

namespace star::core {

/// Result of the §VI-C offline parameter search.
struct TuningResult {
  double alpha = 0.5;
  double lambda_tradeoff = 1.0;
  /// Aggregated total search depth D achieved at the optimum.
  size_t total_depth = 0;
  /// Depth of every (alpha, lambda) grid point, row-major over the grids,
  /// for diagnostics and Fig. 14(a)-style plots.
  std::vector<size_t> grid_depths;
};

/// Grid steps used when the caller does not supply custom grids.
struct TuningOptions {
  std::vector<double> alpha_grid = {0.1, 0.2, 0.3, 0.4, 0.5,
                                    0.6, 0.7, 0.8, 0.9};
  std::vector<double> lambda_grid = {0.0, 0.5, 1.0, 1.5, 2.0};
  /// Matches requested per query while measuring depth.
  size_t k = 20;
};

/// §VI-C: treats the framework as a black box A(alpha, lambda, W) and
/// grid-searches the (alpha, lambda_tradeoff) pair minimizing the
/// aggregated total depth D over the sample workload W. The framework's
/// options are updated to the optimum before returning.
TuningResult TuneParameters(StarFramework& framework,
                            const std::vector<query::QueryGraph>& workload,
                            const TuningOptions& options);

}  // namespace star::core

#endif  // STAR_CORE_TUNING_H_
