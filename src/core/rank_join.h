#ifndef STAR_CORE_RANK_JOIN_H_
#define STAR_CORE_RANK_JOIN_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/deadline.h"
#include "core/match.h"
#include "core/star_search.h"

namespace star::core {

/// A RankedMatchIterator with a declared set of covered query nodes; rank
/// joins use the cover masks to find the joint nodes U shared by two
/// inputs (§VI-A). Query graphs are limited to 64 nodes by the mask width,
/// far beyond any query the paper considers.
class CoveredMatchIterator : public RankedMatchIterator {
 public:
  /// Bit u set <=> query node u is mapped by every match of this stream.
  virtual uint64_t covered_mask() const = 0;
};

/// Adapts a StarSearch into a CoveredMatchIterator producing partial
/// GraphMatches. The stream's scores are the α-weighted star scores
/// (StarSearch::Options::node_weights), so they are monotone and sum
/// exactly to Eq. 2 across a decomposition.
class StarMatchStream : public CoveredMatchIterator {
 public:
  explicit StarMatchStream(std::unique_ptr<StarSearch> search);

  std::optional<GraphMatch> Next() override;
  double UpperBound() const override;
  uint64_t covered_mask() const override { return covered_; }

  /// Matches pulled so far — the star's search depth |L_i| (Fig. 14(d)).
  size_t depth() const { return depth_; }

  StarSearch& search() { return *search_; }

 private:
  std::unique_ptr<StarSearch> search_;
  uint64_t covered_ = 0;
  size_t depth_ = 0;
};

/// Hash rank join of two monotone match streams (starjoin, Fig. 9; HRJN
/// [21] with the α-scheme upper bounds of Eq. 4).
///
/// Pulls alternately from the side with the larger bound contribution,
/// maintains a hash table per input keyed by the joint-node assignment,
/// and emits joined matches once their score is at least the threshold
///   T = max(U_left + top_right, top_left + U_right),
/// which Eq. 4 shows is a valid upper bound on any unseen join result when
/// the two inputs' ranking functions split shared-node scores by α.
///
/// The output is itself a CoveredMatchIterator, enabling the left-deep
/// multiway pipeline of §VI-A.
class RankJoin : public CoveredMatchIterator {
 public:
  struct Stats {
    size_t left_pulled = 0;
    size_t right_pulled = 0;
    size_t pairs_probed = 0;
    size_t results_formed = 0;
  };

  /// `cancel` (optional) cooperatively stops the pull loop: once it
  /// fires, Next() reports exhaustion and already-returned results remain
  /// a valid prefix. Must outlive the join.
  RankJoin(std::unique_ptr<CoveredMatchIterator> left,
           std::unique_ptr<CoveredMatchIterator> right,
           bool enforce_injective, const Cancellation* cancel = nullptr);

  std::optional<GraphMatch> Next() override;
  double UpperBound() const override;
  uint64_t covered_mask() const override { return covered_; }

  const Stats& stats() const { return stats_; }

  /// True if a cancellation checkpoint stopped the pull loop.
  bool cancelled() const { return cancelled_; }

 private:
  struct Side {
    std::unique_ptr<CoveredMatchIterator> input;
    std::unordered_map<std::string, std::vector<GraphMatch>> table;
    double top_score = 0.0;  // score of the first match pulled
    bool top_seen = false;
    bool exhausted = false;
    size_t pulled = 0;
  };

  /// Joint-node signature of a match (data nodes at shared query nodes).
  std::string JoinKey(const GraphMatch& m) const;

  /// Unseen-result threshold T (Eq. 4 composition); -inf when both inputs
  /// are exhausted.
  double Threshold() const;

  /// Pulls one match from the chosen side, probes, pushes join results.
  /// Returns false if the side was exhausted.
  bool Pull(Side& self, Side& other);

  /// Combines two compatible partial matches.
  std::optional<GraphMatch> Combine(const GraphMatch& a,
                                    const GraphMatch& b) const;

  Side left_, right_;
  uint64_t covered_ = 0;
  std::vector<int> shared_nodes_;
  bool enforce_injective_;
  CancelChecker cancel_check_;
  bool cancelled_ = false;

  struct ResultOrder {
    bool operator()(const GraphMatch& a, const GraphMatch& b) const {
      return a.score < b.score;
    }
  };
  std::priority_queue<GraphMatch, std::vector<GraphMatch>, ResultOrder>
      results_;
  Stats stats_;
};

}  // namespace star::core

#endif  // STAR_CORE_RANK_JOIN_H_
