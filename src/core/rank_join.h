#ifndef STAR_CORE_RANK_JOIN_H_
#define STAR_CORE_RANK_JOIN_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <memory_resource>
#include <optional>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/deadline.h"
#include "core/match.h"
#include "core/reuse_cache.h"
#include "core/star_search.h"

namespace star::core {

/// A RankedMatchIterator with a declared set of covered query nodes; rank
/// joins use the cover masks to find the joint nodes U shared by two
/// inputs (§VI-A). Query graphs are limited to 64 nodes by the mask width,
/// far beyond any query the paper considers.
class CoveredMatchIterator : public RankedMatchIterator {
 public:
  /// Bit u set <=> query node u is mapped by every match of this stream.
  virtual uint64_t covered_mask() const = 0;

  /// True when the stream stopped because of a cancellation rather than
  /// genuine exhaustion. A consumer must not treat a cancelled stream's
  /// nullopt as "ran dry": the stream's unseen matches could still tie or
  /// beat anything the consumer has buffered, so emitting past it would
  /// break the canonical order.
  virtual bool cancelled() const { return false; }
};

/// Adapts a StarSearch into a CoveredMatchIterator producing partial
/// GraphMatches. The stream's scores are the α-weighted star scores
/// (StarSearch::Options::node_weights), so they are monotone and sum
/// exactly to Eq. 2 across a decomposition.
class StarMatchStream : public CoveredMatchIterator {
 public:
  explicit StarMatchStream(std::unique_ptr<StarSearch> search);

  std::optional<GraphMatch> Next() override;
  double UpperBound() const override;
  uint64_t covered_mask() const override { return covered_; }
  bool cancelled() const override { return search_->stats().cancelled; }

  /// Matches pulled so far — the star's search depth |L_i| (Fig. 14(d)).
  size_t depth() const { return depth_; }

  StarSearch& search() { return *search_; }

 private:
  std::unique_ptr<StarSearch> search_;
  uint64_t covered_ = 0;
  size_t depth_ = 0;
};

/// A StarMatchStream with a cross-query memo: probes a ReuseCache for the
/// canonical star's recorded stream prefix and replays it instead of
/// driving the engine; when the consumer outruns the prefix the cold
/// search resumes exactly where the recording left off (the engine is
/// deterministic per canonical star, so skipping the replayed pulls lands
/// it in the identical state). Replay also surfaces the RECORDED
/// between-pull upper bounds, so a rank join fed by a warm stream makes
/// bit-for-bit the same pull and emit decisions as one fed cold — warm
/// results are bitwise identical to cold execution, including tie order.
///
/// With cache == nullptr or an empty key (non-exact canonical star) the
/// stream behaves exactly like StarMatchStream: cold engine, no recording.
/// Cold/extending runs record what they emit; CommitToCache() publishes
/// the recording — callers must only invoke it when the whole query run
/// finished without any cancellation, so truncated partials never enter
/// the cache.
class CachedStarStream : public CoveredMatchIterator {
 public:
  /// `scorer` and `cache` (nullable) must outlive the stream. `key` is the
  /// full star cache key (config fingerprint + canonical star signature);
  /// empty disables memoization for this stream. `generation` is the cache
  /// generation captured before any engine work (passed to the insert).
  CachedStarStream(scoring::QueryScorer& scorer, query::StarQuery star,
                   StarSearch::Options options, ReuseCache* cache,
                   std::string key, uint64_t generation);

  /// Same semantics over any StarStreamEngine (the sharded coordinator
  /// wraps its merged per-shard stream this way). The engine must honor
  /// the StarStreamEngine monotonicity contract; replay/resume then works
  /// unchanged because the merged stream is deterministic per canonical
  /// star, exactly like a cold StarSearch.
  CachedStarStream(std::unique_ptr<StarStreamEngine> engine, ReuseCache* cache,
                   std::string key, uint64_t generation);

  std::optional<GraphMatch> Next() override;
  double UpperBound() const override;
  uint64_t covered_mask() const override { return covered_; }
  bool cancelled() const override { return search_->stats().cancelled; }

  /// Matches emitted so far (replayed + live).
  size_t depth() const { return depth_; }

  /// True when the stream probed the cache at all (cache attached and the
  /// canonical star was exact).
  bool probed() const { return cache_ != nullptr && !key_.empty(); }
  /// True when the probe found a recorded prefix.
  bool cache_hit() const { return entry_.has_value(); }
  /// True when the consumer outran the recorded prefix and the cold
  /// engine resumed.
  bool resumed() const { return resumed_; }

  /// Engine counters (all zero for a pure replay — no engine work ran).
  const StarSearchStats& stats() const { return search_->stats(); }

  /// Inserts/extends the cache entry from what this stream emitted. Call
  /// ONLY after the whole query completed with no cancellation anywhere
  /// (framework-level gate); no-op when nothing new was learned.
  void CommitToCache();

 private:
  /// One live engine pull with bound recording; nullopt on exhaustion.
  std::optional<GraphMatch> LivePull();

  ReuseCache* cache_;
  std::string key_;
  uint64_t generation_ = 0;
  std::unique_ptr<StarStreamEngine> search_;
  uint64_t covered_ = 0;

  std::optional<StarTopList> entry_;  // recorded prefix, if any
  size_t pos_ = 0;                    // replay cursor into entry_
  bool resumed_ = false;              // cold engine took over after replay
  bool live_exhausted_ = false;       // engine reported genuine exhaustion
  size_t depth_ = 0;

  /// Recording: combined prefix + live emissions, maintained only when
  /// probed(). record_bounds_[i] is the engine upper bound after i pulls.
  std::vector<StarMatch> record_matches_;
  std::vector<double> record_bounds_;
};

/// Hash rank join of two monotone match streams (starjoin, Fig. 9; HRJN
/// [21] with the α-scheme upper bounds of Eq. 4).
///
/// Pulls alternately from the side with the larger bound contribution,
/// maintains a hash table per input keyed by the joint-node assignment,
/// and emits joined matches once their score is at least the threshold
///   T = max(U_left + top_right, top_left + U_right),
/// which Eq. 4 shows is a valid upper bound on any unseen join result when
/// the two inputs' ranking functions split shared-node scores by α.
///
/// The output is itself a CoveredMatchIterator, enabling the left-deep
/// multiway pipeline of §VI-A.
class RankJoin : public CoveredMatchIterator {
 public:
  struct Stats {
    size_t left_pulled = 0;
    size_t right_pulled = 0;
    size_t pairs_probed = 0;
    size_t results_formed = 0;
  };

  /// `cancel` (optional) cooperatively stops the pull loop: once it
  /// fires, Next() reports exhaustion and already-returned results remain
  /// a valid prefix. Must outlive the join. `mem` (optional) backs the
  /// result heap's storage — pass the per-query arena resource from the
  /// owning thread (the join runs entirely on it); null = default
  /// resource.
  RankJoin(std::unique_ptr<CoveredMatchIterator> left,
           std::unique_ptr<CoveredMatchIterator> right,
           bool enforce_injective, const Cancellation* cancel = nullptr,
           std::pmr::memory_resource* mem = nullptr);

  std::optional<GraphMatch> Next() override;
  double UpperBound() const override;
  uint64_t covered_mask() const override { return covered_; }

  const Stats& stats() const { return stats_; }

  /// True if a cancellation checkpoint stopped the pull loop, or an input
  /// stream ended by cancellation (which poisons the join the same way).
  bool cancelled() const override { return cancelled_; }

 private:
  struct Side {
    std::unique_ptr<CoveredMatchIterator> input;
    std::unordered_map<std::string, std::vector<GraphMatch>> table;
    double top_score = 0.0;  // score of the first match pulled
    bool top_seen = false;
    bool exhausted = false;
    size_t pulled = 0;
  };

  /// Joint-node signature of a match (data nodes at shared query nodes).
  std::string JoinKey(const GraphMatch& m) const;

  /// Unseen-result threshold T (Eq. 4 composition); -inf when both inputs
  /// are exhausted.
  double Threshold() const;

  /// Pulls one match from the chosen side, probes, pushes join results.
  /// Returns false if the side was exhausted.
  bool Pull(Side& self, Side& other);

  /// Combines two compatible partial matches.
  std::optional<GraphMatch> Combine(const GraphMatch& a,
                                    const GraphMatch& b) const;

  Side left_, right_;
  uint64_t covered_ = 0;
  std::vector<int> shared_nodes_;
  bool enforce_injective_;
  CancelChecker cancel_check_;
  bool cancelled_ = false;

  struct ResultOrder {
    bool operator()(const GraphMatch& a, const GraphMatch& b) const {
      return a.score < b.score;
    }
  };
  // Heap container on the per-query arena when one is attached (the join
  // is owning-thread only, so the single-threaded arena is safe here).
  std::priority_queue<GraphMatch, std::pmr::vector<GraphMatch>, ResultOrder>
      results_;
  Stats stats_;
};

}  // namespace star::core

#endif  // STAR_CORE_RANK_JOIN_H_
