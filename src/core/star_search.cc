#include "core/star_search.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory_resource>
#include <unordered_map>
#include <unordered_set>

#include "common/thread_pool.h"
#include "common/timer.h"
#include "query/query_canonical.h"

namespace star::core {

using graph::KnowledgeGraph;
using graph::Neighbor;
using graph::NodeId;
using query::QueryGraph;
using query::StarQuery;
using scoring::QueryScorer;
using scoring::ScoredCandidate;

StarQuery MakeStarQuery(const QueryGraph& q) {
  StarQuery s;
  s.pivot = q.StarPivot();
  if (s.pivot >= 0) s.edges = q.IncidentEdges(s.pivot);
  return s;
}

query::StarQuery CanonicalizeStarEdgeOrder(
    const QueryGraph& q, query::StarQuery star,
    const std::vector<double>& node_weights) {
  // Canonical execution order: process edges sorted by their canonical
  // record (relation attr, leaf attrs, leaf weight) instead of insertion
  // order. Emission order, floating-point summation order and tie-breaking
  // all follow edge order, so this makes the whole stream a function of
  // the canonical star — the property the cross-query star cache replays
  // and the sharded coordinator's match reassembly rely on (coordinator
  // and workers derive the identical order independently). Ties keep
  // insertion order (such stars are never memoized).
  if (star.edges.size() > 1) {
    std::vector<std::pair<std::string, int>> keyed;
    keyed.reserve(star.edges.size());
    for (const int e : star.edges) {
      const int leaf = q.OtherEnd(e, star.pivot);
      const double w = node_weights.empty() ? 1.0 : node_weights[leaf];
      keyed.emplace_back(
          query::CanonicalStarEdgeRecord(q, e, star.pivot, w), e);
    }
    std::stable_sort(
        keyed.begin(), keyed.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    for (size_t i = 0; i < keyed.size(); ++i) star.edges[i] = keyed[i].second;
  }
  return star;
}

StarSearch::StarSearch(QueryScorer& scorer, StarQuery star, Options options)
    : scorer_(scorer), star_(std::move(star)), options_(std::move(options)) {
  cancel_check_ = CancelChecker(options_.cancel);
  star_ = CanonicalizeStarEdgeOrder(scorer_.query(), std::move(star_),
                                    options_.node_weights);
  leaf_nodes_.reserve(star_.edges.size());
  for (const int e : star_.edges) {
    leaf_nodes_.push_back(scorer_.query().OtherEnd(e, star_.pivot));
  }
}

// ---------------------------------------------------------------------------
// Exact per-pivot enumeration (shared by stark and stard's refinement).
// ---------------------------------------------------------------------------

std::unique_ptr<PivotEnumerator> StarSearch::BuildEnumerator(
    NodeId pivot, double pivot_score, StarSearchStats& stats,
    std::pmr::memory_resource* mem) {
  ++stats.enumerators_built;
  const KnowledgeGraph& g = scorer_.graph();
  const scoring::MatchConfig& cfg = scorer_.config();
  const size_t s = star_.edges.size();
  const int d = std::max(1, cfg.d);
  // Local checker: BuildEnumerator runs on pool workers in the parallel
  // stark path, so the owning-thread cancel_check_ can't be shared.
  CancelChecker cancel_check(options_.cancel);

  // Best combined contribution per (leaf, candidate node) under the walk
  // semantics: the direct edges give relsim (h = 1); any node reachable by
  // a walk of length h in [2, d] additionally offers lambda^(h-1).
  // Fill-construction through a pmr outer vector uses-allocator-constructs
  // the maps, so they inherit `mem`.
  std::pmr::vector<std::pmr::unordered_map<NodeId, double>> best(s, mem);

  // CandidateScore defines leaf-match validity (threshold + index
  // semantics shared with every other algorithm in the library).
  const auto consider = [&](NodeId w, double edge_component) {
    if (edge_component < cfg.edge_threshold) return;
    if (cfg.enforce_injective && w == pivot) return;
    for (size_t i = 0; i < s; ++i) {
      const int leaf = leaf_nodes_[i];
      const double node_score = scorer_.CandidateScore(leaf, w);
      if (node_score < 0.0) continue;
      const double total = node_score * NodeWeight(leaf) + edge_component;
      auto [it, inserted] = best[i].try_emplace(w, total);
      if (!inserted && total > it->second) it->second = total;
    }
  };

  // h = 1: direct edges (relation similarity applies, per edge).
  // The per-leaf relation scores differ, so this loop is leaf-specific.
  ++stats.nodes_expanded;
  for (const Neighbor& nb : g.Neighbors(pivot)) {
    if (cancel_check.ShouldStop()) {
      stats.cancelled = true;
      break;
    }
    const NodeId w = nb.node;
    if (cfg.enforce_injective && w == pivot) continue;
    for (size_t i = 0; i < s; ++i) {
      const double edge_component =
          scorer_.RelationScore(star_.edges[i], nb.relation);
      if (edge_component < cfg.edge_threshold) continue;
      const int leaf = leaf_nodes_[i];
      const double node_score = scorer_.CandidateScore(leaf, w);
      if (node_score < 0.0) continue;
      const double total = node_score * NodeWeight(leaf) + edge_component;
      auto [it, inserted] = best[i].try_emplace(w, total);
      if (!inserted && total > it->second) it->second = total;
    }
  }

  // h >= 2: walk layers. W_h = N(W_{h-1}); a node may appear in several
  // layers (walks revisit), and the best (smallest h) dominates since
  // lambda^(h-1) decreases, so each node is considered once at its first
  // layer appearance.
  if (d >= 2) {
    std::pmr::unordered_set<NodeId> reached(mem);  // already credited a decay
    // W_1 = N(pivot); W_h = N(W_{h-1}) are exactly the walk-length-h sets.
    std::pmr::unordered_set<NodeId> layer(mem);
    for (const Neighbor& nb : g.Neighbors(pivot)) layer.insert(nb.node);
    for (int h = 2; h <= d; ++h) {
      const double decay = scorer_.PathDecay(h);
      if (decay < cfg.edge_threshold) break;
      if (cancel_check.ShouldStop()) {
        stats.cancelled = true;
        break;
      }
      std::pmr::unordered_set<NodeId> next(mem);
      for (const NodeId x : layer) {
        if (cancel_check.ShouldStop()) {
          stats.cancelled = true;
          break;
        }
        ++stats.nodes_expanded;
        for (const Neighbor& nb : g.Neighbors(x)) next.insert(nb.node);
      }
      if (stats.cancelled) break;
      // Credit each node once, at its smallest walk length (max decay).
      for (const NodeId w : next) {
        if (reached.insert(w).second) consider(w, decay);
      }
      layer = std::move(next);
    }
  }

  std::vector<std::vector<LeafCandidate>> lists(s);
  for (size_t i = 0; i < s; ++i) {
    lists[i].reserve(best[i].size());
    for (const auto& [node, total] : best[i]) lists[i].push_back({node, total});
  }
  return std::make_unique<PivotEnumerator>(pivot, pivot_score,
                                           std::move(lists),
                                           cfg.enforce_injective,
                                           options_.k_hint);
}

// ---------------------------------------------------------------------------
// stark initialization: exact top-1 for every pivot candidate.
// ---------------------------------------------------------------------------

void StarSearch::InitializeStark() {
  const auto& candidates = scorer_.Candidates(star_.pivot);
  stats_.pivot_candidates = candidates.size();
  reserve_.reserve(candidates.size());
  const double pivot_weight = NodeWeight(star_.pivot);
  const int threads = ResolveThreads(scorer_.config().threads);

  if (threads > 1 && candidates.size() > 1) {
    // Parallel path: the per-candidate d-hop traversals (the cost Exp-1
    // measures) are independent, so after warming the scorer's memos every
    // BuildEnumerator only performs concurrent const reads. Candidate
    // order is preserved through the indexed output vector, so the reserve
    // — and therefore every emitted match — is identical to serial.
    scorer_.WarmStarCaches(star_.pivot, star_.edges, leaf_nodes_);
    std::vector<std::unique_ptr<PivotEnumerator>> built(candidates.size());
    std::vector<StarSearchStats> worker_stats(threads);
    ParallelFor(candidates.size(), threads,
                [&](size_t lo, size_t hi, int chunk) {
                  CancelChecker cancel_check(options_.cancel);
                  for (size_t i = lo; i < hi; ++i) {
                    if (cancel_check.ShouldStop()) {
                      worker_stats[chunk].cancelled = true;
                      break;  // unbuilt slots stay null and are skipped
                    }
                    if (options_.pivot_owned != nullptr &&
                        !(*options_.pivot_owned)[candidates[i].node]) {
                      continue;  // unowned pivots never enter the reserve
                    }
                    // Pool workers must NOT touch the per-query arena.
                    built[i] = BuildEnumerator(candidates[i].node,
                                               candidates[i].score * pivot_weight,
                                               worker_stats[chunk],
                                               std::pmr::get_default_resource());
                    built[i]->PeekScore();  // stage top-1 off the main thread
                  }
                });
    for (const StarSearchStats& ws : worker_stats) stats_.Merge(ws);
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (built[i] == nullptr) continue;  // skipped after cancellation
      const auto top1 = built[i]->PeekScore();
      if (!top1.has_value()) continue;
      ReserveEntry entry;
      entry.bound = *top1;
      entry.pivot = candidates[i].node;
      entry.pivot_score = candidates[i].score * pivot_weight;
      entry.prebuilt = std::move(built[i]);
      reserve_.push_back(std::move(entry));
    }
  } else {
    for (const ScoredCandidate& c : candidates) {
      if (cancel_check_.ShouldStop()) {
        stats_.cancelled = true;
        break;
      }
      if (options_.pivot_owned != nullptr && !(*options_.pivot_owned)[c.node]) {
        continue;
      }
      auto enumerator = BuildEnumerator(c.node, c.score * pivot_weight, stats_,
                                        scorer_.transient_resource());
      const auto top1 = enumerator->PeekScore();
      if (!top1.has_value()) continue;
      ReserveEntry entry;
      entry.bound = *top1;
      entry.pivot = c.node;
      entry.pivot_score = c.score * pivot_weight;
      entry.prebuilt = std::move(enumerator);
      reserve_.push_back(std::move(entry));
    }
  }
  std::sort(reserve_.begin(), reserve_.end(),
            [](const ReserveEntry& a, const ReserveEntry& b) {
              if (a.bound != b.bound) return a.bound > b.bound;
              return a.pivot < b.pivot;  // total order: shard-stable
            });
}

// ---------------------------------------------------------------------------
// stard initialization: d rounds of message propagation (§V-B).
// ---------------------------------------------------------------------------

namespace {

/// A message in flight: "a match of some leaf with (weighted) node score
/// `base` lies `hops` hops back along the walk that delivered this".
/// Example 6's triples. The arrival value at a node reached via a direct
/// edge r is base + relsim(r) for hops == 1, base + lambda^(hops-1)
/// otherwise — evaluated at receipt, which keeps the walk semantics
/// symmetric and the forwarded state independent of relations.
struct Message {
  NodeId source = graph::kInvalidNode;
  double base = 0.0;
  int hops = 0;
};

/// Arrival bookkeeping per (leaf, node): the best arrival values of the
/// two best *distinct* sources — exactly what the pivot estimate needs
/// under injectivity (§V-B's ping-pong rule: "record two best matches"),
/// plus an admissible upper bound for anything dropped from the forward
/// set upstream.
struct ArrivalSlot {
  NodeId best_source = graph::kInvalidNode;
  double best_value = -1.0;
  NodeId second_source = graph::kInvalidNode;
  double second_value = -1.0;
  double overflow = -1.0;

  void Offer(NodeId source, double value) {
    if (source == best_source) {
      best_value = std::max(best_value, value);
      return;
    }
    if (value > best_value) {
      second_source = best_source;
      second_value = best_value;
      best_source = source;
      best_value = value;
    } else if (source == second_source) {
      second_value = std::max(second_value, value);
    } else if (value > second_value) {
      second_source = source;
      second_value = value;
    }
  }

  /// Max arrival value over sources != excluded (-1 if none).
  double BestExcluding(NodeId excluded) const {
    double v = best_source != excluded ? best_value : second_value;
    return std::max(v, overflow);
  }

  double BestAny() const { return std::max(best_value, overflow); }
};

/// Forward state per (leaf, node): messages eligible to travel further.
/// Only (source, base, hops) matter downstream. Same-source dominated
/// entries are pruned; the set is capped with the two best distinct
/// sources protected; drops record an upper bound on future arrivals.
struct ForwardSet {
  std::vector<Message> messages;

  /// Potential of a message = best possible future arrival value.
  static double Potential(const Message& m, double lambda) {
    return m.base + std::pow(lambda, m.hops);  // next arrival: hops+1
  }

  /// Returns (kept, dropped_bound): dropped_bound >= any future arrival of
  /// a message evicted by this insertion (< 0 if nothing dropped).
  std::pair<bool, double> Insert(const Message& m, double lambda,
                                 size_t cap) {
    for (const Message& e : messages) {
      if (e.source == m.source && e.base >= m.base && e.hops <= m.hops) {
        return {false, -1.0};
      }
    }
    std::erase_if(messages, [&](const Message& e) {
      return e.source == m.source && m.base >= e.base && m.hops <= e.hops;
    });
    messages.push_back(m);
    if (messages.size() <= cap) return {true, -1.0};
    // Evict the weakest unprotected message.
    std::sort(messages.begin(), messages.end(),
              [&](const Message& a, const Message& b) {
                return Potential(a, lambda) > Potential(b, lambda);
              });
    const NodeId first = messages[0].source;
    NodeId second = graph::kInvalidNode;
    for (const Message& e : messages) {
      if (e.source != first) {
        second = e.source;
        break;
      }
    }
    for (size_t i = messages.size(); i-- > 0;) {
      const Message& e = messages[i];
      const bool first_of_source =
          std::find_if(messages.begin(), messages.begin() + i,
                       [&](const Message& x) { return x.source == e.source; }) ==
          messages.begin() + i;
      if ((e.source == first || e.source == second) && first_of_source) {
        continue;  // protected
      }
      const double bound = Potential(e, lambda);
      const bool dropped_is_new =
          e.source == m.source && e.base == m.base && e.hops == m.hops;
      messages.erase(messages.begin() + i);
      return {!dropped_is_new, bound};
    }
    return {true, -1.0};  // everything protected; tolerate over-capacity
  }
};

constexpr size_t kForwardCap = 5;

}  // namespace

void StarSearch::InitializeStard() {
  const KnowledgeGraph& g = scorer_.graph();
  const scoring::MatchConfig& cfg = scorer_.config();
  const size_t s = star_.edges.size();
  const int d = std::max(1, cfg.d);
  const double lambda = cfg.lambda;
  const int threads = ResolveThreads(cfg.threads);

  std::vector<std::unordered_map<NodeId, ArrivalSlot>> arrivals(s);

  // Parallel contract: leaves propagate into disjoint state (arrivals[i]
  // etc. are per-leaf), so the d rounds run leaf-parallel after the scorer
  // is warmed; each leaf's message sequence — and thus its arrival slots —
  // is exactly the serial one.
  if (threads > 1) scorer_.WarmStarCaches(star_.pivot, star_.edges, leaf_nodes_);

  // Propagation scratch lands on the per-query arena only when the
  // ParallelFor below is guaranteed inline (the single-threaded arena must
  // never be touched from pool workers).
  std::pmr::memory_resource* const prop_mem =
      (threads > 1 && s > 1) ? std::pmr::get_default_resource()
                             : scorer_.transient_resource();

  // All d propagation rounds for one leaf (§V-B, Example 6).
  const auto propagate = [&](size_t i, StarSearchStats& stats) {
    CancelChecker cancel_check(options_.cancel);
    const int leaf = leaf_nodes_[i];
    const auto& leaf_node = scorer_.query().node(leaf);
    // Untyped wildcards would flood the graph with messages (every node is
    // a candidate); they use the closed-form bound below instead. Typed
    // wildcards have proper candidate lists and propagate normally.
    if (leaf_node.wildcard && leaf_node.type_name.empty()) return;

    struct FrontierEntry {
      NodeId at;
      Message msg;
    };
    std::pmr::unordered_map<NodeId, ForwardSet> forward(prop_mem);
    std::pmr::vector<FrontierEntry> frontier(prop_mem);
    std::pmr::vector<std::pair<NodeId, double>> overflow_frontier(prop_mem);

    // Round 1: each leaf candidate sends to its neighbors; the arrival
    // value uses the direct edge's relation similarity.
    const double leaf_weight = NodeWeight(leaf);
    for (const ScoredCandidate& c : scorer_.Candidates(leaf)) {
      if (cancel_check.ShouldStop()) {
        stats.cancelled = true;
        return;
      }
      const double base = c.score * leaf_weight;
      const Message m{c.node, base, 1};
      for (const Neighbor& nb : g.Neighbors(c.node)) {
        ++stats.messages_sent;
        const double relsim = scorer_.RelationScore(star_.edges[i], nb.relation);
        if (relsim >= cfg.edge_threshold) {
          arrivals[i][nb.node].Offer(c.node, base + relsim);
        }
        if (d >= 2) {
          auto [kept, dropped] =
              forward[nb.node].Insert(m, lambda, kForwardCap);
          if (kept) frontier.push_back({nb.node, m});
          if (dropped >= 0.0) {
            overflow_frontier.emplace_back(nb.node, dropped);
          }
        }
      }
    }

    // Rounds 2..d: forward one hop; arrival value is base + lambda^(h-1).
    for (int h = 2; h <= d; ++h) {
      const double decay = scorer_.PathDecay(h);
      std::pmr::vector<FrontierEntry> next(prop_mem);
      std::pmr::vector<std::pair<NodeId, double>> next_overflow(prop_mem);
      for (const FrontierEntry& fe : frontier) {
        if (cancel_check.ShouldStop()) {
          stats.cancelled = true;
          return;
        }
        Message fwd = fe.msg;
        fwd.hops = h;
        for (const Neighbor& nb : g.Neighbors(fe.at)) {
          ++stats.messages_sent;
          if (decay >= cfg.edge_threshold) {
            arrivals[i][nb.node].Offer(fwd.source, fwd.base + decay);
          }
          if (h < d) {
            auto [kept, dropped] =
                forward[nb.node].Insert(fwd, lambda, kForwardCap);
            if (kept) next.push_back({nb.node, fwd});
            if (dropped >= 0.0) next_overflow.emplace_back(nb.node, dropped);
          }
        }
      }
      // Overflow upper bounds spread undecayed to stay admissible.
      for (const auto& [at, ub] : overflow_frontier) {
        ArrivalSlot& self = arrivals[i][at];
        self.overflow = std::max(self.overflow, ub);
        for (const Neighbor& nb : g.Neighbors(at)) {
          ArrivalSlot& slot = arrivals[i][nb.node];
          if (ub > slot.overflow) {
            slot.overflow = ub;
            next_overflow.emplace_back(nb.node, ub);
          }
        }
      }
      frontier = std::move(next);
      overflow_frontier = std::move(next_overflow);
    }
    // Any overflow still queued lands in its node's slot.
    for (const auto& [at, ub] : overflow_frontier) {
      ArrivalSlot& slot = arrivals[i][at];
      slot.overflow = std::max(slot.overflow, ub);
    }
  };

  {
    std::vector<StarSearchStats> worker_stats(std::max(threads, 1));
    ParallelFor(s, threads, [&](size_t lo, size_t hi, int chunk) {
      for (size_t i = lo; i < hi; ++i) propagate(i, worker_stats[chunk]);
    });
    for (const StarSearchStats& ws : worker_stats) stats_.Merge(ws);
  }

  // Estimate each pivot candidate's top-1 score from the arrival slots
  // (read-only now, so candidates partition across workers; the indexed
  // output vector preserves candidate order for determinism).
  const auto& candidates = scorer_.Candidates(star_.pivot);
  stats_.pivot_candidates = candidates.size();
  const double pivot_weight = NodeWeight(star_.pivot);
  std::vector<ReserveEntry> entries(candidates.size());
  std::vector<uint8_t> chunk_cancelled(
      static_cast<size_t>(std::max(threads, 1)), 0);
  ParallelFor(candidates.size(), threads, [&](size_t lo, size_t hi, int chunk) {
    CancelChecker cancel_check(options_.cancel);
    for (size_t idx = lo; idx < hi; ++idx) {
      if (cancel_check.ShouldStop()) {
        chunk_cancelled[chunk] = 1;
        break;  // unprocessed entries stay invalid
      }
      const ScoredCandidate& c = candidates[idx];
      if (options_.pivot_owned != nullptr && !(*options_.pivot_owned)[c.node]) {
        continue;  // entry stays invalid (pivot == kInvalidNode)
      }
      double estimate = c.score * pivot_weight;
      bool feasible = true;
      for (size_t i = 0; i < s; ++i) {
        const int leaf = leaf_nodes_[i];
        const auto& leaf_node = scorer_.query().node(leaf);
        double contribution = -1.0;
        if (leaf_node.wildcard && leaf_node.type_name.empty()) {
          if (g.Degree(c.node) > 0) {
            contribution = cfg.wildcard_node_score * NodeWeight(leaf) +
                           scorer_.MaxEdgeScore(star_.edges[i]);
          }
        } else {
          const auto it = arrivals[i].find(c.node);
          if (it != arrivals[i].end()) {
            contribution = cfg.enforce_injective
                               ? it->second.BestExcluding(c.node)
                               : it->second.BestAny();
          }
        }
        if (contribution < 0.0) {
          feasible = false;
          break;
        }
        estimate += contribution;
      }
      if (!feasible) continue;  // entry stays invalid (pivot == kInvalidNode)
      entries[idx].bound = estimate;
      entries[idx].pivot = c.node;
      entries[idx].pivot_score = c.score * pivot_weight;
    }
  });
  for (const uint8_t c : chunk_cancelled) {
    if (c) stats_.cancelled = true;
  }
  reserve_.reserve(candidates.size());
  for (ReserveEntry& e : entries) {
    if (e.pivot != graph::kInvalidNode) reserve_.push_back(std::move(e));
  }
  std::sort(reserve_.begin(), reserve_.end(),
            [](const ReserveEntry& a, const ReserveEntry& b) {
              if (a.bound != b.bound) return a.bound > b.bound;
              return a.pivot < b.pivot;  // total order: shard-stable
            });
}

// ---------------------------------------------------------------------------
// §V-C alternative: lazy descent ordered by a closed-form bound.
// ---------------------------------------------------------------------------

void StarSearch::InitializeHybrid() {
  const scoring::MatchConfig& cfg = scorer_.config();
  const size_t s = star_.edges.size();
  // Per-leaf upper bound, identical for every pivot: best leaf candidate
  // F_N (weighted) plus the best possible edge score.
  double leaf_ub_total = 0.0;
  bool feasible = true;
  for (size_t i = 0; i < s; ++i) {
    const int leaf = leaf_nodes_[i];
    const auto& leaf_node = scorer_.query().node(leaf);
    double best_leaf;
    if (leaf_node.wildcard && leaf_node.type_name.empty()) {
      best_leaf = cfg.wildcard_node_score;
    } else {
      const auto& cands = scorer_.Candidates(leaf);
      if (cands.empty()) {
        feasible = false;
        break;
      }
      best_leaf = cands[0].score;
    }
    leaf_ub_total +=
        best_leaf * NodeWeight(leaf) + scorer_.MaxEdgeScore(star_.edges[i]);
  }
  const auto& candidates = scorer_.Candidates(star_.pivot);
  stats_.pivot_candidates = candidates.size();
  if (!feasible) return;
  const double pivot_weight = NodeWeight(star_.pivot);
  reserve_.reserve(candidates.size());
  for (const ScoredCandidate& c : candidates) {
    if (options_.pivot_owned != nullptr && !(*options_.pivot_owned)[c.node]) {
      continue;
    }
    ReserveEntry entry;
    entry.bound = c.score * pivot_weight + leaf_ub_total;
    entry.pivot = c.node;
    entry.pivot_score = c.score * pivot_weight;
    reserve_.push_back(std::move(entry));
  }
  // Candidates are already sorted by score, so the reserve is sorted by
  // bound; std::sort kept for clarity and weighted edge cases.
  std::sort(reserve_.begin(), reserve_.end(),
            [](const ReserveEntry& a, const ReserveEntry& b) {
              if (a.bound != b.bound) return a.bound > b.bound;
              return a.pivot < b.pivot;  // total order: shard-stable
            });
}

// ---------------------------------------------------------------------------
// Shared incremental top-k loop (Fig. 5 steps 2-3, lazily).
// ---------------------------------------------------------------------------

void StarSearch::Initialize() {
  if (initialized_) return;
  initialized_ = true;
  // Pre-expired deadlines / already-cancelled requests skip the strategy
  // initialization entirely: no candidate retrieval, no graph scan.
  if (cancel_check_.ShouldStop()) {
    stats_.cancelled = true;
    return;
  }
  const WallTimer wall;
  const CpuTimer cpu;
  const text::KernelStats kernel_before = scorer_.kernel_stats();
  if (options_.strategy == StarStrategy::kHybrid) {
    InitializeHybrid();
  } else if (options_.strategy == StarStrategy::kStark ||
             scorer_.config().d <= 1) {
    // §V-B: "when d = 1, stard degrades to stark, thus having the same
    // runtime" — one round of message passing has nothing to amortize, so
    // the eager path is used directly.
    InitializeStark();
  } else {
    InitializeStard();
  }
  stats_.init_wall_ms = wall.ElapsedMillis();
  stats_.init_cpu_ms = cpu.ElapsedMillis();
  const text::KernelStats& kernel_after = scorer_.kernel_stats();
  stats_.fn_pairs_scored = kernel_after.pairs - kernel_before.pairs;
  stats_.fn_early_exits = kernel_after.early_exits - kernel_before.early_exits;
  stats_.fn_feature_evals =
      kernel_after.features_evaluated - kernel_before.features_evaluated;
  stats_.fn_features_skipped =
      kernel_after.features_skipped - kernel_before.features_skipped;
}

void StarSearch::ActivateReserve() {
  while (reserve_pos_ < reserve_.size() &&
         (queue_.empty() ||
          reserve_[reserve_pos_].bound >= queue_.top().score)) {
    // stats_.cancelled is re-read directly: a checkpoint inside the
    // BuildEnumerator call below sets it through the shared stats struct,
    // and the amortized ShouldStop alone could keep building for up to
    // kStride further iterations after the expiry.
    if (stats_.cancelled || cancel_check_.ShouldStop()) {
      stats_.cancelled = true;
      break;
    }
    ReserveEntry& entry = reserve_[reserve_pos_++];
    std::unique_ptr<PivotEnumerator> enumerator =
        entry.prebuilt != nullptr
            ? std::move(entry.prebuilt)
            : BuildEnumerator(entry.pivot, entry.pivot_score, stats_,
                              scorer_.transient_resource());
    const auto score = enumerator->PeekScore();
    if (!score.has_value()) continue;
    active_.push_back(std::move(enumerator));
    queue_.push(QueueEntry{*score, active_.size() - 1, entry.pivot});
  }
}

std::optional<StarMatch> StarSearch::Next() {
  Initialize();
  // scorer_.truncated() is checked unamortized alongside the cancellation
  // flags: a cancellation observed inside a lazy Candidates() call leaves
  // that list missing arbitrary entries (truncation happens mid-bulk-score,
  // before the canonical sort), so a match emitted afterwards could be
  // out of global order — the stride-amortized clock check alone can let
  // up to kStride such emissions slip through.
  if (stats_.cancelled || scorer_.truncated() || cancel_check_.ShouldStop()) {
    stats_.cancelled = true;
    return std::nullopt;  // already-emitted matches stay a valid prefix
  }
  ActivateReserve();
  // Re-check: if any checkpoint fired, activation wound down early and
  // queue_.top() may not be the true next-best match, so nothing more is
  // emitted. stats_.cancelled is read directly — the amortized ShouldStop
  // only consults the clock every kStride calls and can return false right
  // after the checkpoint inside ActivateReserve observed the expiry, which
  // would break the correctly-ordered-prefix guarantee. Ditto a scorer
  // truncation inside a leaf list built lazily by BuildEnumerator.
  if (stats_.cancelled || scorer_.truncated()) {
    stats_.cancelled = true;
    return std::nullopt;
  }
  if (queue_.empty()) return std::nullopt;
  const QueueEntry top = queue_.top();
  queue_.pop();
  std::optional<StarMatch> m = active_[top.enumerator_index]->Next();
  const auto next_score = active_[top.enumerator_index]->PeekScore();
  if (next_score.has_value()) {
    queue_.push(QueueEntry{*next_score, top.enumerator_index, top.pivot});
  }
  ++stats_.matches_emitted;
  if (m.has_value()) last_emitted_score_ = m->score;
  return m;
}

double StarSearch::AprioriBound() {
  if (apriori_ready_) return apriori_bound_;
  apriori_ready_ = true;
  const scoring::MatchConfig& cfg = scorer_.config();
  const auto node_cap = [&](int u) {
    return scorer_.query().node(u).wildcard ? cfg.wildcard_node_score : 1.0;
  };
  double cap = NodeWeight(star_.pivot) * node_cap(star_.pivot);
  for (size_t i = 0; i < star_.edges.size(); ++i) {
    cap += NodeWeight(leaf_nodes_[i]) * node_cap(leaf_nodes_[i]) +
           scorer_.MaxEdgeScore(star_.edges[i]);
  }
  apriori_bound_ = cap;
  return apriori_bound_;
}

double StarSearch::UpperBound() {
  Initialize();
  double ub = -std::numeric_limits<double>::infinity();
  if (!queue_.empty()) ub = queue_.top().score;
  if (reserve_pos_ < reserve_.size()) {
    ub = std::max(ub, reserve_[reserve_pos_].bound);
  }
  if (stats_.cancelled || scorer_.truncated()) {
    // A wound-down build can leave the structural state missing entries:
    // an interrupted init drops whole pivots from the reserve, and an
    // interrupted BuildEnumerator stages a partial enumerator whose
    // PeekScore understates its pivot's true best. The structural maximum
    // alone may then sit BELOW a real unseen match, so the bound falls
    // back to the a-priori star cap — tightened by the last emitted score
    // (the stream is monotone) when the candidate universe is complete.
    // The bound may jump UP at the moment of cancellation; that is the
    // safe direction for every consumer (a higher join threshold only
    // delays emission, a higher shard bound only causes extra pulls).
    double cap = AprioriBound();
    if (!scorer_.truncated()) cap = std::min(cap, last_emitted_score_);
    ub = std::max(ub, cap);
  }
  return ub;
}

std::vector<StarMatch> StarSearch::TopK(size_t k) {
  std::vector<StarMatch> out;
  out.reserve(k);
  while (out.size() < k) {
    auto m = Next();
    if (!m.has_value()) break;
    out.push_back(std::move(*m));
  }
  return out;
}

GraphMatch StarSearch::ToGraphMatch(const StarMatch& m) const {
  GraphMatch gm;
  gm.mapping.assign(scorer_.query().node_count(), graph::kInvalidNode);
  gm.mapping[star_.pivot] = m.pivot;
  for (size_t i = 0; i < leaf_nodes_.size(); ++i) {
    gm.mapping[leaf_nodes_[i]] = m.leaves[i];
  }
  gm.score = m.score;
  return gm;
}

}  // namespace star::core
