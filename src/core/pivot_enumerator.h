#ifndef STAR_CORE_PIVOT_ENUMERATOR_H_
#define STAR_CORE_PIVOT_ENUMERATOR_H_

#include <cstddef>
#include <optional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "core/match.h"

namespace star::core {

/// One candidate leaf assignment: a data node and its combined
/// contribution F_N(leaf, node) + F_E(edge, best path).
struct LeafCandidate {
  graph::NodeId node = graph::kInvalidNode;
  double total = 0.0;
};

/// Generates the matches pivoted at a single data node in non-increasing
/// score order (the per-pivot "lattice search" of §V-A, after [4]).
///
/// Construction sorts each leaf list descending (optionally pruning via
/// Prop. 3 / the injective per-list bound first); Next() then walks the
/// cursor lattice with a priority queue and a visited set, advancing one
/// cursor at a time from each popped state. With injectivity enforcement,
/// states whose leaf nodes collide (or equal the pivot) are skipped but
/// still expanded, preserving the monotone emission order.
class PivotEnumerator {
 public:
  /// `k_hint` > 0 enables list pruning for a top-k workload (keeping
  /// enough entries for correctness under the given injectivity mode).
  PivotEnumerator(graph::NodeId pivot, double pivot_score,
                  std::vector<std::vector<LeafCandidate>> lists,
                  bool enforce_injective, size_t k_hint);

  /// Score of the next match without consuming it; nullopt if exhausted.
  std::optional<double> PeekScore();

  /// The next-best match pivoted here; nullopt when exhausted.
  std::optional<StarMatch> Next();

  graph::NodeId pivot() const { return pivot_; }
  double pivot_score() const { return pivot_score_; }

  /// Number of lattice states popped so far (diagnostics).
  size_t states_explored() const { return states_explored_; }

 private:
  struct State {
    double score;
    std::vector<int> cursor;
    bool operator<(const State& other) const {  // max-heap by score
      return score < other.score;
    }
  };

  struct CursorHash {
    size_t operator()(const std::vector<int>& c) const {
      size_t h = 0xcbf29ce484222325ULL;
      for (const int x : c) {
        h ^= static_cast<size_t>(x) + 0x9e3779b97f4a7c15ULL + (h << 6) +
             (h >> 2);
      }
      return h;
    }
  };

  void PushState(std::vector<int> cursor);
  double StateScore(const std::vector<int>& cursor) const;
  bool StateInjective(const std::vector<int>& cursor) const;
  /// Pops states until a valid one is staged or the lattice is exhausted.
  void Stage();

  graph::NodeId pivot_;
  double pivot_score_;
  std::vector<std::vector<LeafCandidate>> lists_;
  bool enforce_injective_;
  bool exhausted_ = false;
  bool zero_leaf_emitted_ = false;

  std::priority_queue<State> frontier_;
  std::unordered_set<std::vector<int>, CursorHash> visited_;
  std::optional<State> staged_;
  size_t states_explored_ = 0;
};

}  // namespace star::core

#endif  // STAR_CORE_PIVOT_ENUMERATOR_H_
