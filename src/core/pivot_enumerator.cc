#include "core/pivot_enumerator.h"

#include <algorithm>

#include "core/topk_utils.h"

namespace star::core {

PivotEnumerator::PivotEnumerator(graph::NodeId pivot, double pivot_score,
                                 std::vector<std::vector<LeafCandidate>> lists,
                                 bool enforce_injective, size_t k_hint)
    : pivot_(pivot),
      pivot_score_(pivot_score),
      lists_(std::move(lists)),
      enforce_injective_(enforce_injective) {
  if (k_hint > 0) {
    // Prop. 3 (or its injective per-list variant) bounds how deep into the
    // unsorted lists a top-k workload can reach; prune before sorting.
    std::vector<std::vector<ListEntry>> entries(lists_.size());
    for (size_t i = 0; i < lists_.size(); ++i) {
      entries[i].reserve(lists_[i].size());
      for (size_t j = 0; j < lists_[i].size(); ++j) {
        entries[i].push_back({j, lists_[i][j].total});
      }
    }
    if (enforce_injective_) {
      PruneListsPerList(entries, k_hint);
    } else {
      PruneListsProp3(entries, k_hint);
    }
    for (size_t i = 0; i < lists_.size(); ++i) {
      std::vector<LeafCandidate> kept;
      kept.reserve(entries[i].size());
      for (const ListEntry& e : entries[i]) kept.push_back(lists_[i][e.index]);
      lists_[i] = std::move(kept);
    }
  }
  for (auto& list : lists_) {
    std::sort(list.begin(), list.end(),
              [](const LeafCandidate& a, const LeafCandidate& b) {
                return a.total > b.total ||
                       (a.total == b.total && a.node < b.node);
              });
    if (list.empty()) {
      exhausted_ = true;  // a leaf with no candidate: no match at this pivot
      return;
    }
  }
  if (!lists_.empty()) {
    PushState(std::vector<int>(lists_.size(), 0));
  }
}

double PivotEnumerator::StateScore(const std::vector<int>& cursor) const {
  double s = pivot_score_;
  for (size_t i = 0; i < cursor.size(); ++i) {
    s += lists_[i][cursor[i]].total;
  }
  return s;
}

bool PivotEnumerator::StateInjective(const std::vector<int>& cursor) const {
  for (size_t i = 0; i < cursor.size(); ++i) {
    const graph::NodeId a = lists_[i][cursor[i]].node;
    if (a == pivot_) return false;
    for (size_t j = i + 1; j < cursor.size(); ++j) {
      if (a == lists_[j][cursor[j]].node) return false;
    }
  }
  return true;
}

void PivotEnumerator::PushState(std::vector<int> cursor) {
  if (!visited_.insert(cursor).second) return;
  const double score = StateScore(cursor);
  frontier_.push(State{score, std::move(cursor)});
}

void PivotEnumerator::Stage() {
  if (staged_.has_value() || exhausted_) return;
  if (lists_.empty()) {
    // Zero-leaf star: the pivot alone is the single match.
    if (!zero_leaf_emitted_) {
      staged_ = State{pivot_score_, {}};
      zero_leaf_emitted_ = true;
    } else {
      exhausted_ = true;
    }
    return;
  }
  while (!frontier_.empty()) {
    State top = frontier_.top();
    frontier_.pop();
    ++states_explored_;
    // Expand successors regardless of validity: an invalid state's
    // children may be valid and cheaper states are never skipped.
    for (size_t i = 0; i < lists_.size(); ++i) {
      if (top.cursor[i] + 1 < static_cast<int>(lists_[i].size())) {
        std::vector<int> next = top.cursor;
        ++next[i];
        PushState(std::move(next));
      }
    }
    if (!enforce_injective_ || StateInjective(top.cursor)) {
      staged_ = std::move(top);
      return;
    }
  }
  exhausted_ = true;
}

std::optional<double> PivotEnumerator::PeekScore() {
  Stage();
  if (!staged_.has_value()) return std::nullopt;
  return staged_->score;
}

std::optional<StarMatch> PivotEnumerator::Next() {
  Stage();
  if (!staged_.has_value()) return std::nullopt;
  StarMatch m;
  m.pivot = pivot_;
  m.score = staged_->score;
  m.leaves.reserve(staged_->cursor.size());
  for (size_t i = 0; i < staged_->cursor.size(); ++i) {
    m.leaves.push_back(lists_[i][staged_->cursor[i]].node);
  }
  staged_.reset();
  return m;
}

}  // namespace star::core
