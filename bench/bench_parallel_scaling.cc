// Parallel-engine scaling: stark, stard and brute force at 1/2/4/8 worker
// threads on the DBpediaLike preset, with a built-in equivalence check —
// every thread count must reproduce the serial top-k bit-for-bit (same
// matches, same scores, same order).
//
// Wall time covers the full per-query pipeline (fresh QueryScorer, so
// online candidate scoring is included — the dominant cost the parallel
// engine targets). "cpu/wall" is the initialization-phase CPU-to-wall
// ratio, i.e. how many cores the engine kept busy.
//
// Environment overrides (also see bench_util.h):
//   STAR_BENCH_NODES    dataset size (default 20000)
//   STAR_BENCH_QUERIES  star queries per engine (default 6)

#include <cstdio>
#include <vector>

#include "baseline/brute_force.h"
#include "bench_util.h"
#include "common/thread_pool.h"
#include "core/star_search.h"

namespace star::bench {
namespace {

constexpr size_t kTopK = 20;
const int kThreadCounts[] = {1, 2, 4, 8};

struct EngineRow {
  const char* engine;
  int threads;
  double wall_ms;
  double cpu_over_wall;
  bool identical;
};

bool SameStarMatches(const std::vector<core::StarMatch>& a,
                     const std::vector<core::StarMatch>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].pivot != b[i].pivot || a[i].leaves != b[i].leaves ||
        a[i].score != b[i].score) {
      return false;
    }
  }
  return true;
}

bool SameGraphMatches(const std::vector<core::GraphMatch>& a,
                      const std::vector<core::GraphMatch>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].mapping != b[i].mapping || a[i].score != b[i].score) return false;
  }
  return true;
}

/// One engine pass over all queries at one thread count.
struct PassResult {
  double wall_ms = 0.0;
  double init_wall_ms = 0.0;
  double init_cpu_ms = 0.0;
  std::vector<std::vector<core::StarMatch>> star_results;
  std::vector<std::vector<core::GraphMatch>> graph_results;
};

PassResult RunStarEngine(const Dataset& d, core::StarStrategy strategy,
                         const std::vector<query::QueryGraph>& queries,
                         int threads) {
  PassResult r;
  auto match = BenchConfig(/*d=*/2);
  match.threads = threads;
  for (const auto& q : queries) {
    WallTimer timer;
    scoring::QueryScorer scorer(d.graph, q, *d.ensemble, match,
                                d.index.get());
    core::StarSearch::Options so;
    so.strategy = strategy;
    so.k_hint = kTopK;
    core::StarSearch search(scorer, core::MakeStarQuery(q), so);
    r.star_results.push_back(search.TopK(kTopK));
    r.wall_ms += timer.ElapsedMillis();
    r.init_wall_ms += search.stats().init_wall_ms;
    r.init_cpu_ms += search.stats().init_cpu_ms;
  }
  return r;
}

PassResult RunBruteForce(const Dataset& d,
                         const std::vector<query::QueryGraph>& queries,
                         int threads) {
  PassResult r;
  auto match = BenchConfig(/*d=*/2);
  match.threads = threads;
  // No index: the paper's O(|V|) scan base case — candidate scoring is
  // the whole cost, and a tight cutoff keeps the enumeration bounded.
  match.max_candidates = 24;
  for (const auto& q : queries) {
    WallTimer timer;
    const CpuTimer cpu;
    scoring::QueryScorer scorer(d.graph, q, *d.ensemble, match,
                                /*index=*/nullptr);
    r.graph_results.push_back(baseline::BruteForceTopK(scorer, kTopK));
    r.wall_ms += timer.ElapsedMillis();
    r.init_cpu_ms += cpu.ElapsedMillis();
    r.init_wall_ms += timer.ElapsedMillis();
  }
  return r;
}

void PrintRows(const std::vector<EngineRow>& rows) {
  std::printf("%-12s %8s %12s %9s %9s %10s\n", "engine", "threads", "wall ms",
              "speedup", "cpu/wall", "identical");
  PrintRule();
  double base = 0.0;
  for (const EngineRow& row : rows) {
    if (row.threads == 1) base = row.wall_ms;
    std::printf("%-12s %8d %12.1f %8.2fx %9.2f %10s\n", row.engine,
                row.threads, row.wall_ms, base > 0 ? base / row.wall_ms : 0.0,
                row.cpu_over_wall, row.identical ? "yes" : "NO");
  }
  PrintRule();
}

}  // namespace
}  // namespace star::bench

int main() {
  using namespace star;
  using namespace star::bench;

  const size_t nodes = EnvSize("STAR_BENCH_NODES", 20000);
  const size_t num_queries = EnvSize("STAR_BENCH_QUERIES", 6);
  const Dataset d = MakeDataset(graph::DBpediaLike(nodes));

  query::WorkloadGenerator wg(d.graph, /*seed=*/71);
  std::vector<query::QueryGraph> star_queries;
  std::vector<query::QueryGraph> small_queries;  // brute force
  for (size_t i = 0; i < num_queries; ++i) {
    star_queries.push_back(wg.RandomStarQuery(4, BenchWorkloadOptions()));
    small_queries.push_back(wg.RandomStarQuery(3, BenchWorkloadOptions()));
  }

  PrintTitle("Parallel scaling: " + d.name + ", " +
             std::to_string(d.graph.node_count()) + " nodes, " +
             std::to_string(num_queries) + " queries, k=" +
             std::to_string(kTopK) +
             " (hardware threads: " + std::to_string(StarThreads()) + ")");

  std::vector<EngineRow> rows;
  const auto engine_pass = [&](const char* name, auto runner, auto& baseline,
                               const auto& same, int threads) {
    const auto pass = runner(threads);
    EngineRow row;
    row.engine = name;
    row.threads = threads;
    row.wall_ms = pass.wall_ms;
    row.cpu_over_wall =
        pass.init_wall_ms > 0 ? pass.init_cpu_ms / pass.init_wall_ms : 1.0;
    row.identical = threads == 1 || same(baseline, pass);
    if (threads == 1) baseline = pass;
    rows.push_back(row);
  };

  {
    PassResult base;
    for (const int t : kThreadCounts) {
      engine_pass(
          "stark", [&](int th) { return RunStarEngine(d, core::StarStrategy::kStark, star_queries, th); },
          base,
          [](const PassResult& a, const PassResult& b) {
            for (size_t i = 0; i < a.star_results.size(); ++i) {
              if (!SameStarMatches(a.star_results[i], b.star_results[i])) return false;
            }
            return true;
          },
          t);
    }
  }
  {
    PassResult base;
    for (const int t : kThreadCounts) {
      engine_pass(
          "stard", [&](int th) { return RunStarEngine(d, core::StarStrategy::kStard, star_queries, th); },
          base,
          [](const PassResult& a, const PassResult& b) {
            for (size_t i = 0; i < a.star_results.size(); ++i) {
              if (!SameStarMatches(a.star_results[i], b.star_results[i])) return false;
            }
            return true;
          },
          t);
    }
  }
  {
    PassResult base;
    for (const int t : kThreadCounts) {
      engine_pass(
          "bruteforce", [&](int th) { return RunBruteForce(d, small_queries, th); },
          base,
          [](const PassResult& a, const PassResult& b) {
            for (size_t i = 0; i < a.graph_results.size(); ++i) {
              if (!SameGraphMatches(a.graph_results[i], b.graph_results[i])) return false;
            }
            return true;
          },
          t);
    }
  }

  PrintRows(rows);

  bool all_identical = true;
  for (const auto& row : rows) all_identical &= row.identical;
  std::printf("determinism: %s\n",
              all_identical ? "all thread counts byte-identical to serial"
                            : "MISMATCH — parallel results diverge from serial");
  return all_identical ? 0 : 1;
}
