// Serving-layer throughput benchmark: drives serve::QueryService with
// concurrent clients across cache-hit-ratio scenarios and reports QPS and
// latency percentiles (p50/p95/p99) per scenario, as JSON on stdout so
// runs can be committed/diffed (BENCH_serve.json).
//
// Every OK response is checked bitwise against a direct
// StarFramework::TopK run of the same query — the process exits non-zero
// if serving (cached or fresh, any concurrency) ever diverges from direct
// execution.
//
// Environment overrides:
//   STAR_BENCH_NODES     dataset size (default 10000)
//   STAR_SERVE_REQUESTS  requests per scenario (default 96)

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "serve/query_service.h"

namespace star::bench {
namespace {

struct Scenario {
  int clients;
  /// Requested fraction of cache hits (0 disables the cache entirely).
  double target_hit_ratio;
};

struct ScenarioResult {
  Scenario scenario;
  size_t requests = 0;
  size_t distinct_queries = 0;
  double wall_s = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double observed_hit_rate = 0.0;
  size_t mismatches = 0;
  size_t errors = 0;
};

bool SameMatches(const std::vector<core::GraphMatch>& a,
                 const std::vector<core::GraphMatch>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].mapping != b[i].mapping || a[i].score != b[i].score) return false;
  }
  return true;
}

ScenarioResult RunScenario(const Dataset& d, const core::StarOptions& star,
                           const std::vector<query::QueryGraph>& pool,
                           const std::vector<std::vector<core::GraphMatch>>&
                               expected,
                           const Scenario& sc, size_t total_requests,
                           size_t k) {
  const bool cache_on = sc.target_hit_ratio > 0.0;
  // With D distinct queries over T requests and an LRU large enough to
  // hold them all, hit rate converges to (T - D) / T.
  const size_t distinct = std::max<size_t>(
      1, cache_on ? static_cast<size_t>(
                        total_requests * (1.0 - sc.target_hit_ratio) + 0.5)
                  : pool.size());
  const size_t use = std::min(distinct, pool.size());

  serve::ServiceOptions so;
  so.star = star;
  so.max_inflight = sc.clients;
  so.max_queue = total_requests;  // this bench measures latency, not shed load
  so.cache_capacity = cache_on ? use : 0;

  serve::QueryService service(d.graph, *d.ensemble, d.index.get(), so);

  std::atomic<size_t> next{0};
  std::atomic<size_t> mismatches{0};
  std::atomic<size_t> errors{0};
  std::vector<std::vector<double>> latencies(sc.clients);

  WallTimer wall;
  std::vector<std::thread> clients;
  for (int c = 0; c < sc.clients; ++c) {
    clients.emplace_back([&, c] {
      latencies[c].reserve(total_requests / sc.clients + 1);
      for (;;) {
        const size_t i = next.fetch_add(1);
        if (i >= total_requests) return;
        const size_t qi = i % use;
        serve::QueryRequest req;
        req.query = pool[qi];
        req.k = k;
        WallTimer t;
        const serve::QueryResponse resp = service.Execute(std::move(req));
        latencies[c].push_back(t.ElapsedMillis());
        if (!resp.status.ok()) {
          errors.fetch_add(1);
        } else if (!SameMatches(resp.matches, expected[qi])) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();

  ScenarioResult r;
  r.scenario = sc;
  r.requests = total_requests;
  r.distinct_queries = use;
  r.wall_s = wall.ElapsedSeconds();
  r.qps = total_requests / r.wall_s;
  StatAccumulator acc;
  for (const auto& per_client : latencies) {
    for (const double ms : per_client) acc.Add(ms);
  }
  r.p50_ms = acc.Percentile(0.50);
  r.p95_ms = acc.Percentile(0.95);
  r.p99_ms = acc.Percentile(0.99);
  r.observed_hit_rate = service.stats().cache_hit_rate();
  r.mismatches = mismatches.load();
  r.errors = errors.load();
  return r;
}

}  // namespace
}  // namespace star::bench

int main() {
  using namespace star;
  using namespace star::bench;

  const size_t nodes = EnvSize("STAR_BENCH_NODES", 10000);
  const size_t total_requests = EnvSize("STAR_SERVE_REQUESTS", 96);
  const size_t k = 10;
  const Dataset d = MakeDataset(graph::DBpediaLike(nodes));

  core::StarOptions star;
  star.match = BenchConfig(1);

  // The query pool is sized for the lowest-hit-ratio scenario (the one
  // needing the most distinct queries).
  const size_t pool_size = total_requests;
  query::WorkloadGenerator wg(d.graph, /*seed=*/83);
  std::vector<query::QueryGraph> pool;
  std::vector<std::vector<core::GraphMatch>> expected;
  for (size_t i = 0; i < pool_size; ++i) {
    pool.push_back(wg.RandomStarQuery(3, BenchWorkloadOptions()));
    core::StarFramework fw(d.graph, *d.ensemble, d.index.get(), star);
    expected.push_back(fw.TopK(pool.back(), k));
  }

  const std::vector<Scenario> scenarios = {
      {1, 0.0},  {1, 0.5},  {1, 0.9},  // single client: pure latency
      {4, 0.0},  {4, 0.5},  {4, 0.9},
      {8, 0.0},  {8, 0.5},  {8, 0.9},
  };

  std::vector<ScenarioResult> results;
  for (const Scenario& sc : scenarios) {
    results.push_back(
        RunScenario(d, star, pool, expected, sc, total_requests, k));
    const ScenarioResult& r = results.back();
    std::fprintf(stderr,
                 "[serve] clients=%d hit=%.1f qps=%.1f p50=%.1fms p95=%.1fms "
                 "(observed hit %.2f, %zu mismatches, %zu errors)\n",
                 sc.clients, sc.target_hit_ratio, r.qps, r.p50_ms, r.p95_ms,
                 r.observed_hit_rate, r.mismatches, r.errors);
  }

  size_t total_mismatches = 0, total_errors = 0;
  for (const ScenarioResult& r : results) {
    total_mismatches += r.mismatches;
    total_errors += r.errors;
  }
  const bool ok = total_mismatches == 0 && total_errors == 0;

  std::printf("{\n");
  std::printf("  \"bench\": \"serve_throughput\",\n");
  PrintHostJson();
  std::printf("  \"dataset\": {\"name\": \"%s\", \"nodes\": %zu, \"edges\": %zu},\n",
              d.name.c_str(), d.graph.node_count(), d.graph.edge_count());
  std::printf("  \"workload\": {\"requests_per_scenario\": %zu, \"k\": %zu},\n",
              total_requests, k);
  std::printf("  \"scenarios\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const ScenarioResult& r = results[i];
    std::printf(
        "    {\"clients\": %d, \"target_hit_ratio\": %.1f, "
        "\"distinct_queries\": %zu, \"qps\": %.1f, \"p50_ms\": %.2f, "
        "\"p95_ms\": %.2f, \"p99_ms\": %.2f, \"observed_hit_rate\": %.3f}%s\n",
        r.scenario.clients, r.scenario.target_hit_ratio, r.distinct_queries,
        r.qps, r.p50_ms, r.p95_ms, r.p99_ms, r.observed_hit_rate,
        i + 1 < results.size() ? "," : "");
  }
  std::printf("  ],\n");
  std::printf("  \"identity\": {\"mismatches\": %zu, \"errors\": %zu, \"served_equals_direct\": %s}\n",
              total_mismatches, total_errors, ok ? "true" : "false");
  std::printf("}\n");

  std::fprintf(stderr, "identity: %s\n",
               ok ? "served results bitwise identical to direct TopK"
                  : "MISMATCH — serving diverges from direct execution");
  return ok ? 0 : 1;
}
