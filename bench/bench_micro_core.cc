// Micro-benchmarks (google-benchmark) for the core primitives, including
// the ablation DESIGN.md calls out: Prop. 3 pruning vs sorting whole leaf
// lists before per-pivot enumeration.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "bench_util.h"
#include "core/pivot_enumerator.h"
#include "core/star_search.h"
#include "core/topk_utils.h"
#include "text/similarity.h"

namespace {

using namespace star;
using namespace star::bench;

std::vector<std::vector<core::ListEntry>> RandomLists(size_t s, size_t m,
                                                      uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<core::ListEntry>> lists(s);
  for (auto& l : lists) {
    l.reserve(m);
    for (size_t j = 0; j < m; ++j) l.push_back({j, rng.NextDouble()});
  }
  return lists;
}

// Ablation: Prop. 3 pruning then sorting the survivors ...
void BM_Prop3PruneThenSort(benchmark::State& state) {
  const size_t s = 4;
  const size_t m = static_cast<size_t>(state.range(0));
  const size_t k = 20;
  for (auto _ : state) {
    state.PauseTiming();
    auto lists = RandomLists(s, m, 42);
    state.ResumeTiming();
    core::PruneListsProp3(lists, k);
    for (auto& l : lists) {
      std::sort(l.begin(), l.end(),
                [](const core::ListEntry& a, const core::ListEntry& b) {
                  return a.value > b.value;
                });
    }
    benchmark::DoNotOptimize(lists);
  }
}
BENCHMARK(BM_Prop3PruneThenSort)->Arg(64)->Arg(512)->Arg(4096);

// ... vs sorting the full lists (what a naive stark would do).
void BM_FullSort(benchmark::State& state) {
  const size_t s = 4;
  const size_t m = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto lists = RandomLists(s, m, 42);
    state.ResumeTiming();
    for (auto& l : lists) {
      std::sort(l.begin(), l.end(),
                [](const core::ListEntry& a, const core::ListEntry& b) {
                  return a.value > b.value;
                });
    }
    benchmark::DoNotOptimize(lists);
  }
}
BENCHMARK(BM_FullSort)->Arg(64)->Arg(512)->Arg(4096);

void BM_TopKValues(benchmark::State& state) {
  Rng rng(7);
  std::vector<double> values(static_cast<size_t>(state.range(0)));
  for (auto& v : values) v = rng.NextDouble();
  for (auto _ : state) {
    auto copy = values;
    benchmark::DoNotOptimize(core::TopKValues(std::move(copy), 20));
  }
}
BENCHMARK(BM_TopKValues)->Arg(1024)->Arg(65536);

void BM_EnsembleScore(benchmark::State& state) {
  const text::SimilarityEnsemble ensemble;
  const char* a = "Richard Linklater";
  const char* b = "Richard Linkletter";
  for (auto _ : state) {
    benchmark::DoNotOptimize(ensemble.Score(a, b));
  }
}
BENCHMARK(BM_EnsembleScore);

void BM_Levenshtein(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        text::LevenshteinSimilarity("Jeffrey Jacob Abrams", "J.J. Abrams"));
  }
}
BENCHMARK(BM_Levenshtein);

// One full stard star query, end to end, at small scale.
void BM_StardStarQuery(benchmark::State& state) {
  static const Dataset* dataset = [] {
    auto cfg = graph::DBpediaLike(5000);
    return new Dataset(MakeDataset(cfg));
  }();
  const auto match = BenchConfig(/*d=*/2);
  query::WorkloadGenerator wg(dataset->graph, 5);
  const auto q = wg.RandomStarQuery(4, BenchWorkloadOptions());
  for (auto _ : state) {
    scoring::QueryScorer scorer(dataset->graph, q, *dataset->ensemble, match,
                                dataset->index.get());
    core::StarSearch::Options so;
    so.strategy = core::StarStrategy::kStard;
    so.k_hint = 20;
    core::StarSearch search(scorer, core::MakeStarQuery(q), so);
    benchmark::DoNotOptimize(search.TopK(20));
  }
}
BENCHMARK(BM_StardStarQuery)->Unit(benchmark::kMillisecond);

// Message-passing initialization alone (the stard-specific cost).
void BM_StardInitialization(benchmark::State& state) {
  static const Dataset* dataset = [] {
    auto cfg = graph::DBpediaLike(5000);
    cfg.seed = 99;
    return new Dataset(MakeDataset(cfg));
  }();
  const auto match = BenchConfig(static_cast<int>(state.range(0)));
  query::WorkloadGenerator wg(dataset->graph, 5);
  const auto q = wg.RandomStarQuery(4, BenchWorkloadOptions());
  for (auto _ : state) {
    scoring::QueryScorer scorer(dataset->graph, q, *dataset->ensemble, match,
                                dataset->index.get());
    core::StarSearch::Options so;
    so.strategy = core::StarStrategy::kStard;
    core::StarSearch search(scorer, core::MakeStarQuery(q), so);
    benchmark::DoNotOptimize(search.UpperBound());  // forces Initialize()
  }
}
BENCHMARK(BM_StardInitialization)->Arg(1)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
