// Exp-2 / Figure 13(a,b): average star-query runtime vs k (d = 2).
// Paper shape: BP and graphTA degrade sharply as k grows; stark and stard
// are nearly insensitive to k.

#include "bench_util.h"

int main() {
  using namespace star;
  using namespace star::bench;

  const size_t n = EnvSize("STAR_BENCH_NODES", 20000);
  const size_t num_queries = EnvSize("STAR_BENCH_QUERIES", 10);

  for (const auto& config : {graph::DBpediaLike(n), graph::Yago2Like(n)}) {
    const auto d = MakeDataset(config);
    query::WorkloadGenerator wg(d.graph, 2016);
    // k only matters when queries have many competing matches; crank the
    // ambiguity so the match lists are deep (the paper's keyword queries).
    auto wo = BenchWorkloadOptions();
    wo.partial_label = 0.8;
    wo.keep_type = 0.25;
    const auto queries =
        wg.StarWorkload(static_cast<int>(num_queries), 3, 5, wo);
    const auto match = BenchConfig(/*d=*/2);

    PrintTitle("Figure 13(a,b) (" + d.name + "): avg runtime [ms] vs k, d=2");
    std::printf("%-9s %12s %12s %12s %12s\n", "k", "stark", "stard",
                "graphTA", "BP");
    for (const size_t k : {size_t{1}, size_t{10}, size_t{20}, size_t{50},
                           size_t{100}}) {
      RunOptions opts;
      opts.k = k;
      std::printf("%-9zu", k);
      for (const Engine engine :
           {Engine::kStark, Engine::kStard, Engine::kGraphTa, Engine::kBp}) {
        const auto ws = RunWorkload(engine, d, match, queries, opts);
        std::printf(" %11.1f%s", ws.per_query_ms.Mean(),
                    ws.timeouts > 0 ? "*" : " ");
        std::fflush(stdout);
      }
      std::printf("\n");
    }
    std::printf("(* = budget hits at %.0f ms/query)\n\n", RunOptions{}.budget_ms);
  }
  return 0;
}
