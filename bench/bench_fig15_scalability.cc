// Exp-5 / Figure 15: scalability on growing Freebase-like graphs
// G1..G4 (the paper grows 10M->40M nodes; we scale by 1/400 keeping the
// 4.5x edge ratio). (a) star queries, all engines, k=20, d=2;
// (b) general-query joins per decomposition method.
// Paper shape: all runtimes grow with |G|; stark/stard stay ~an order of
// magnitude ahead; stard improves on stark by 35-45%; the Sim* methods
// beat Rand/MaxDeg by 20-44%.

#include "bench_util.h"

int main() {
  using namespace star;
  using namespace star::bench;

  const size_t base = EnvSize("STAR_BENCH_NODES", 25000);
  const size_t num_queries = EnvSize("STAR_BENCH_QUERIES", 10);
  const std::vector<size_t> sizes = {base, 2 * base, 3 * base, 4 * base};

  // --- (a) star queries --------------------------------------------------
  // Medians: with laptop-sized workloads a single baseline timeout would
  // otherwise dominate a mean.
  PrintTitle("Figure 15(a): star-query median runtime [ms] vs graph size "
             "(freebase-like), k=20, d=2");
  std::printf("%-14s %12s %12s %12s %12s\n", "graph", "stark", "stard",
              "graphTA", "BP");
  std::vector<std::unique_ptr<Dataset>> datasets;
  for (const size_t n : sizes) {
    datasets.push_back(
        std::make_unique<Dataset>(MakeDataset(graph::FreebaseLike(n))));
  }
  const auto match = BenchConfig(/*d=*/2);
  RunOptions opts;
  opts.k = 20;
  for (size_t gi = 0; gi < datasets.size(); ++gi) {
    const auto& d = *datasets[gi];
    query::WorkloadGenerator wg(d.graph, 55);
    const auto queries = wg.StarWorkload(static_cast<int>(num_queries), 3, 5,
                                         BenchWorkloadOptions());
    std::printf("G%zu(%zuk)%*s", gi + 1, sizes[gi] / 1000,
                static_cast<int>(6 - std::to_string(sizes[gi] / 1000).size()),
                "");
    for (const Engine engine :
         {Engine::kStark, Engine::kStard, Engine::kGraphTa, Engine::kBp}) {
      const auto ws = RunWorkload(engine, d, match, queries, opts);
      std::printf(" %11.1f%s", ws.per_query_ms.Percentile(0.5),
                  ws.timeouts > 0 ? "*" : " ");
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("(* = budget hits at %.0f ms/query)\n\n", opts.budget_ms);

  // --- (b) general-query joins -------------------------------------------
  PrintTitle("Figure 15(b): join median runtime [ms] vs graph size, k=20, d=1");
  const std::vector<std::pair<core::DecompositionStrategy, double>> methods = {
      {core::DecompositionStrategy::kRand, 0.5},
      {core::DecompositionStrategy::kMaxDeg, 0.3},
      {core::DecompositionStrategy::kSimSize, 0.5},
      {core::DecompositionStrategy::kSimTop, 0.3},
      {core::DecompositionStrategy::kSimDec, 0.9},
  };
  std::printf("%-14s", "graph");
  for (const auto& [s, a] : methods) std::printf(" %9s", DecompositionName(s));
  std::printf("\n");
  const auto join_match = BenchConfig(/*d=*/1);
  for (size_t gi = 0; gi < datasets.size(); ++gi) {
    const auto& d = *datasets[gi];
    query::WorkloadGenerator wg(d.graph, 66);
    const auto queries = wg.GraphWorkload(static_cast<int>(num_queries), 4, 5,
                                          BenchWorkloadOptions());
    std::printf("G%zu(%zuk)%*s", gi + 1, sizes[gi] / 1000,
                static_cast<int>(6 - std::to_string(sizes[gi] / 1000).size()),
                "");
    for (const auto& [strategy, alpha] : methods) {
      RunOptions jopts;
      jopts.k = 20;
      jopts.alpha = alpha;
      jopts.decomposition = strategy;
      const auto ws = RunWorkload(Engine::kStard, d, join_match, queries, jopts);
      std::printf(" %9.1f", ws.per_query_ms.Percentile(0.5));
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
