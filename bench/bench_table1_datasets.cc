// Table 1: dataset statistics. The paper tabulates DBpedia / YAGO2 /
// Freebase; this binary prints the same columns (plus degree-shape
// diagnostics) for the scaled synthetic stand-ins every other bench uses
// (see DESIGN.md for the substitution).

#include "bench_util.h"
#include "graph/graph_stats.h"

int main() {
  using namespace star;
  using namespace star::bench;

  const size_t n = EnvSize("STAR_BENCH_NODES", 50000);
  PrintTitle("Table 1: dataset statistics (synthetic stand-ins, scale " +
             std::to_string(n) + " nodes)");
  std::printf("%-16s %9s %10s %7s %7s %8s %8s %7s %6s\n", "Graph", "Nodes",
              "Edges", "Types", "Rels", "AvgDeg", "MaxDeg", "p99Deg", "Gini");

  for (const auto& config :
       {graph::DBpediaLike(n), graph::Yago2Like(n), graph::FreebaseLike(n)}) {
    const auto d = MakeDataset(config);
    const auto s = graph::ComputeGraphStats(d.graph);
    std::printf("%-16s %9zu %10zu %7zu %7zu %8.1f %8zu %7.0f %6.2f\n",
                d.name.c_str(), s.nodes, s.edges, s.types, s.relations,
                s.degree.mean, s.degree.max, s.degree.p99, s.degree.gini);
  }
  std::printf(
      "\npaper reference: DBpedia 4.2M/133.4M (359 types, 800 relations),\n"
      "YAGO2 2.9M/11M (6543, 349), Freebase 40.3M/180M (10110, 9101).\n"
      "Shape preserved: DBpedia densest, YAGO2 sparsest, Freebase most "
      "types/relations;\nall three heavy-tailed (high Gini / p99 >> mean).\n");
  return 0;
}
