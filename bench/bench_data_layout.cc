// Flat vs compressed data-plane layout: resident footprint and decode
// throughput, with the layout-transparency contract checked in-bench.
//
// Three measurements on the DBpediaLike preset, per layout:
//
//   1. footprint: resident bytes of the graph CSR + string pool + edge
//      arrays and of the label index (dictionaries + postings arenas),
//      from KnowledgeGraph::Footprint() / LabelIndex::MemoryFootprint().
//   2. candidate-gen: RankedCandidates() over every workload query label
//      (the retrieval path that streams postings through PostingsCursor).
//   3. expansion: full adjacency sweeps (the d-hop expansion decode path;
//      flat borrows the CSR span, compressed decodes delta-varints).
//
// Identity gate: both layouts must return byte-identical candidate lists
// and bitwise-identical top-k (3 strategies) — any mismatch, or a
// compressed footprint that fails to beat flat, exits nonzero. Output is
// one JSON object (committed as BENCH_layout.json).
//
// Usage: bench_data_layout [--quick]
//   --quick shrinks the dataset/workload for CI smoke runs.
//
// Environment overrides (also see bench_util.h):
//   STAR_BENCH_NODES    dataset size (default 20000; --quick 4000)
//   STAR_BENCH_QUERIES  star queries per workload (default 8; --quick 3)

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"

namespace star::bench {
namespace {

struct LayoutSide {
  const graph::KnowledgeGraph* graph = nullptr;
  const graph::LabelIndex* index = nullptr;
  graph::GraphFootprint gf;
  graph::IndexFootprint xf;
  double candidate_ms = 0.0;
  double expansion_ms = 0.0;
  size_t candidates = 0;
  size_t edges_decoded = 0;
};

/// Query-label probes: every non-wildcard label of the workload.
std::vector<std::string> Probes(const std::vector<query::QueryGraph>& queries) {
  std::vector<std::string> out;
  for (const auto& q : queries) {
    for (int u = 0; u < q.node_count(); ++u) {
      if (!q.node(u).wildcard) out.push_back(q.node(u).label);
    }
  }
  return out;
}

void RunCandidateGen(LayoutSide& s, const std::vector<std::string>& probes,
                     size_t cap, int repeats) {
  WallTimer t;
  for (int r = 0; r < repeats; ++r) {
    for (const auto& p : probes) {
      s.candidates += s.index->RankedCandidates(p, /*type=*/-1, cap).size();
    }
  }
  s.candidate_ms = t.ElapsedMillis();
}

void RunExpansion(LayoutSide& s, int repeats) {
  WallTimer t;
  size_t sink = 0;
  for (int r = 0; r < repeats; ++r) {
    for (graph::NodeId v = 0; v < s.graph->node_count(); ++v) {
      for (const graph::Neighbor& nb : s.graph->Neighbors(v)) {
        sink += nb.node;
        ++s.edges_decoded;
      }
    }
  }
  s.expansion_ms = t.ElapsedMillis();
  if (sink == 0xdeadbeef) std::printf("%zu", sink);  // keep the sweep alive
}

/// Byte-identical candidate lists and bitwise-identical top-k across the
/// two layouts, over every strategy.
bool IdentitySweep(const Dataset& d, const LayoutSide& flat,
                   const LayoutSide& comp,
                   const std::vector<query::QueryGraph>& queries,
                   const std::vector<std::string>& probes, size_t cap) {
  bool ok = true;
  for (const auto& p : probes) {
    ok &= flat.index->RankedCandidates(p, -1, cap) ==
          comp.index->RankedCandidates(p, -1, cap);
    ok &= flat.index->CandidatesByLabel(p) == comp.index->CandidatesByLabel(p);
  }
  for (const auto strategy :
       {core::StarStrategy::kStark, core::StarStrategy::kStard,
        core::StarStrategy::kHybrid}) {
    core::StarOptions so;
    so.strategy = strategy;
    so.match = BenchConfig(/*d=*/2);
    so.match.threads = 1;
    for (const auto& q : queries) {
      core::StarFramework ffw(*flat.graph, *d.ensemble, flat.index, so);
      core::StarFramework cfw(*comp.graph, *d.ensemble, comp.index, so);
      const auto a = ffw.TopK(q, 20);
      const auto b = cfw.TopK(q, 20);
      if (a.size() != b.size()) {
        ok = false;
        continue;
      }
      for (size_t i = 0; i < a.size(); ++i) {
        ok &= a[i].mapping == b[i].mapping && a[i].score == b[i].score;
      }
    }
  }
  return ok;
}

void PrintSide(const char* name, const LayoutSide& s, bool last) {
  std::printf("  \"%s\": {\n", name);
  std::printf("    \"graph_bytes\": {\"csr\": %zu, \"labels\": %zu, \"edges\": %zu, \"dicts\": %zu, \"total\": %zu, \"slack\": %zu},\n",
              s.gf.csr_bytes, s.gf.label_bytes, s.gf.edge_bytes,
              s.gf.dict_bytes, s.gf.total(), s.gf.capacity_slack);
  std::printf("    \"index_bytes\": {\"tokens\": %zu, \"postings\": %zu, \"types\": %zu, \"trigrams\": %zu, \"total\": %zu, \"slack\": %zu},\n",
              s.xf.token_bytes, s.xf.postings_bytes, s.xf.type_bytes,
              s.xf.trigram_bytes, s.xf.total(), s.xf.capacity_slack);
  std::printf("    \"resident_bytes\": %zu,\n", s.gf.total() + s.xf.total());
  std::printf("    \"candidate_gen\": {\"ms\": %.1f, \"candidates\": %zu},\n",
              s.candidate_ms, s.candidates);
  std::printf("    \"expansion\": {\"ms\": %.1f, \"edges_decoded\": %zu, \"medges_per_s\": %.1f}\n",
              s.expansion_ms, s.edges_decoded,
              s.expansion_ms > 0
                  ? static_cast<double>(s.edges_decoded) / s.expansion_ms / 1e3
                  : 0.0);
  std::printf("  }%s\n", last ? "" : ",");
}

}  // namespace
}  // namespace star::bench

int main(int argc, char** argv) {
  using namespace star;
  using namespace star::bench;

  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const size_t nodes = EnvSize("STAR_BENCH_NODES", quick ? 4000 : 20000);
  const size_t num_queries = EnvSize("STAR_BENCH_QUERIES", quick ? 3 : 8);
  const int repeats = quick ? 2 : 5;

  const Dataset d = MakeDataset(graph::DBpediaLike(nodes));
  const graph::KnowledgeGraph compressed =
      graph::CloneWithLayout(d.graph, graph::GraphLayout::kCompressed);
  const graph::LabelIndex compressed_index(compressed,
                                           graph::GraphLayout::kCompressed);

  LayoutSide flat;
  flat.graph = &d.graph;
  flat.index = d.index.get();
  LayoutSide comp;
  comp.graph = &compressed;
  comp.index = &compressed_index;
  flat.gf = d.graph.Footprint();
  flat.xf = d.index->MemoryFootprint();
  comp.gf = compressed.Footprint();
  comp.xf = compressed_index.MemoryFootprint();

  query::WorkloadGenerator wg(d.graph, /*seed=*/71);
  std::vector<query::QueryGraph> queries;
  for (size_t i = 0; i < num_queries; ++i) {
    queries.push_back(wg.RandomStarQuery(4, BenchWorkloadOptions()));
  }
  const auto probes = Probes(queries);
  const size_t cap = BenchConfig(2).max_retrieval;

  RunCandidateGen(flat, probes, cap, repeats);
  RunCandidateGen(comp, probes, cap, repeats);
  RunExpansion(flat, repeats);
  RunExpansion(comp, repeats);

  const bool identical = IdentitySweep(d, flat, comp, queries, probes, cap);
  const size_t flat_bytes = flat.gf.total() + flat.xf.total();
  const size_t comp_bytes = comp.gf.total() + comp.xf.total();
  const bool smaller = comp_bytes < flat_bytes;
  const bool ok = identical && smaller;

  std::printf("{\n");
  std::printf("  \"bench\": \"data_layout\",\n");
  PrintHostJson();
  std::printf("  \"dataset\": {\"name\": \"%s\", \"nodes\": %zu, \"edges\": %zu},\n",
              d.name.c_str(), d.graph.node_count(), d.graph.edge_count());
  std::printf("  \"workload\": {\"queries\": %zu, \"probes\": %zu, \"repeats\": %d, \"quick\": %s},\n",
              num_queries, probes.size(), repeats, quick ? "true" : "false");
  PrintSide("flat", flat, /*last=*/false);
  PrintSide("compressed", comp, /*last=*/false);
  std::printf("  \"reduction\": {\"resident_bytes_saved\": %zu, \"percent\": %.1f},\n",
              flat_bytes - (smaller ? comp_bytes : flat_bytes),
              flat_bytes > 0
                  ? 100.0 * (1.0 - static_cast<double>(comp_bytes) /
                                       static_cast<double>(flat_bytes))
                  : 0.0);
  std::printf("  \"identity\": {\"layouts_identical\": %s, \"compressed_smaller\": %s}\n",
              identical ? "true" : "false", smaller ? "true" : "false");
  std::printf("}\n");

  std::fprintf(stderr, "identity: %s\n",
               ok ? "layouts bit-identical, compressed footprint smaller"
                  : "FAILURE — layout divergence or no footprint win");
  return ok ? 0 : 1;
}
