// Bound-driven candidate retrieval vs score-everything retrieval
// (DESIGN.md "Bound-driven retrieval"): per-selectivity-class wall time,
// candidates fully scored, and block skip counters, with the bitwise
// identity contract checked in-bench.
//
// Three probe classes over the DBpediaLike preset, each a single-node
// query retrieved through the block-max walk (max_retrieval = 0, so the
// postings union itself is the retrieval set):
//
//   1. selective: exact node labels — theta reaches the top scores after
//      the first waves and most blocks are skipped outright.
//   2. partial:   first label token only — broader unions, mid thetas.
//   3. fuzzy:     misspelled token — trigram-expanded unions, the
//      weakest bounds (worst case for pruning).
//
// Identity gate: for every probe the pruned candidate list must be
// byte-identical to the unpruned one (ids AND score bits, including the
// deterministic tie cut). Reduction gate: on the selective class the
// pruned path must fully score at least 3x fewer candidates than the
// unpruned path (1.5x under --quick, whose 5x smaller unions barely
// clear the first waves). Any violation exits nonzero. Output is one
// JSON object (committed as BENCH_candidates.json).
//
// Usage: bench_candidate_retrieval [--quick]
//   --quick shrinks the dataset/probe count for CI smoke runs.
//
// Environment overrides (also see bench_util.h):
//   STAR_BENCH_NODES   dataset size (default 20000; --quick 4000)
//   STAR_BENCH_PROBES  probes per class (default 12; --quick 4)

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"

namespace star::bench {
namespace {

struct ClassResult {
  const char* name = "";
  double off_ms = 0.0;
  double on_ms = 0.0;
  size_t pool_off = 0;        // candidates retrieved without pruning
  // "Fully scored" = kernel pairs that survived every upper-bound early
  // exit and ran the complete feature sweep (pairs - early_exits). The
  // pruned path both scores fewer nodes AND hands the kernel a far higher
  // threshold (theta instead of node_threshold), so its lane caps reject
  // most survivors cheaply too.
  size_t full_off = 0;
  size_t full_on = 0;
  scoring::RetrievalStats stats;  // pruned-path counters
  bool identical = true;
};

/// The most-duplicated labels of the graph (count desc, label asc): the
/// "Brad Pitt" ambiguity regime, where an exact query label has many
/// perfect matches and theta saturates within the first wave.
std::vector<std::string> AmbiguousLabels(const graph::KnowledgeGraph& g,
                                         size_t count) {
  std::map<std::string, size_t> freq;
  for (graph::NodeId v = 0; v < g.node_count(); ++v) {
    ++freq[std::string(g.NodeLabel(v))];
  }
  std::vector<std::pair<size_t, std::string>> ranked;
  ranked.reserve(freq.size());
  for (auto& [label, c] : freq) ranked.push_back({c, label});
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) {
              return a.first != b.first ? a.first > b.first
                                        : a.second < b.second;
            });
  std::vector<std::string> out;
  for (size_t i = 0; i < count && i < ranked.size(); ++i) {
    out.push_back(ranked[i].second);
  }
  return out;
}

std::vector<std::string> MakeProbes(const graph::KnowledgeGraph& g,
                                    const char* klass, size_t count) {
  std::vector<std::string> out = AmbiguousLabels(g, count);
  if (std::strcmp(klass, "partial") == 0) {
    for (auto& label : out) label = label.substr(0, label.find(' '));
  } else if (std::strcmp(klass, "fuzzy") == 0) {
    for (auto& label : out) label = label.substr(0, label.find(' ')) + "x";
  }
  return out;
}

ClassResult RunClass(const Dataset& d, const char* klass,
                     const std::vector<std::string>& probes,
                     scoring::MatchConfig cfg, int repeats) {
  ClassResult r;
  r.name = klass;
  for (const auto& label : probes) {
    query::QueryGraph q;
    const int u = q.AddNode(label);
    r.pool_off += repeats * d.index->Candidates(label, /*type=*/-1).size();

    std::vector<scoring::ScoredCandidate> reference;
    {
      cfg.use_pruned_retrieval = false;
      WallTimer t;
      for (int rep = 0; rep < repeats; ++rep) {
        scoring::QueryScorer scorer(d.graph, q, *d.ensemble, cfg,
                                    d.index.get());
        const auto& c = scorer.Candidates(u);
        if (rep == 0) reference.assign(c.begin(), c.end());
        const auto& ks = scorer.kernel_stats();
        r.full_off += ks.pairs - ks.early_exits;
      }
      r.off_ms += t.ElapsedMillis();
    }
    {
      cfg.use_pruned_retrieval = true;
      WallTimer t;
      for (int rep = 0; rep < repeats; ++rep) {
        scoring::QueryScorer scorer(d.graph, q, *d.ensemble, cfg,
                                    d.index.get());
        const auto& c = scorer.Candidates(u);
        if (rep == 0) {
          r.identical &= c.size() == reference.size();
          for (size_t i = 0; r.identical && i < c.size(); ++i) {
            r.identical &= c[i].node == reference[i].node &&
                           c[i].score == reference[i].score;
          }
        }
        r.stats.Merge(scorer.retrieval_stats());
        const auto& ks = scorer.kernel_stats();
        r.full_on += ks.pairs - ks.early_exits;
      }
      r.on_ms += t.ElapsedMillis();
    }
  }
  return r;
}

double FullScoreReduction(const ClassResult& r) {
  return r.full_on > 0 ? static_cast<double>(r.full_off) /
                             static_cast<double>(r.full_on)
                       : 0.0;
}

void PrintClass(const ClassResult& r, bool last) {
  std::printf("  \"%s\": {\n", r.name);
  std::printf(
      "    \"unpruned\": {\"ms\": %.1f, \"pool\": %zu, "
      "\"fully_scored\": %zu},\n",
      r.off_ms, r.pool_off, r.full_off);
  std::printf(
      "    \"pruned\": {\"ms\": %.1f, \"waved\": %zu, \"fully_scored\": %zu, "
      "\"blocks_considered\": %zu, \"blocks_skipped\": %zu, "
      "\"nodes_considered\": %zu, \"nodes_deduped\": %zu, "
      "\"nodes_bound_skipped\": %zu},\n",
      r.on_ms, r.stats.nodes_scored, r.full_on, r.stats.blocks_considered,
      r.stats.blocks_skipped, r.stats.nodes_considered,
      r.stats.nodes_deduped, r.stats.nodes_bound_skipped);
  std::printf("    \"fully_scored_reduction\": %.1f,\n",
              FullScoreReduction(r));
  std::printf("    \"speedup\": %.2f,\n",
              r.on_ms > 0 ? r.off_ms / r.on_ms : 0.0);
  std::printf("    \"identical\": %s\n", r.identical ? "true" : "false");
  std::printf("  }%s\n", last ? "" : ",");
}

}  // namespace
}  // namespace star::bench

int main(int argc, char** argv) {
  using namespace star;
  using namespace star::bench;

  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const size_t nodes = EnvSize("STAR_BENCH_NODES", quick ? 4000 : 20000);
  const size_t num_probes = EnvSize("STAR_BENCH_PROBES", quick ? 4 : 12);
  const int repeats = quick ? 1 : 3;

  const Dataset d = MakeDataset(graph::DBpediaLike(nodes));

  // Block-max walk over the postings union itself (no rarity pre-cap),
  // truncated to a top-k-search-sized candidate list.
  scoring::MatchConfig cfg = BenchConfig(/*d=*/2);
  cfg.max_retrieval = 0;
  cfg.max_candidates = 20;
  cfg.threads = 1;

  std::vector<ClassResult> results;
  for (const char* klass : {"selective", "partial", "fuzzy"}) {
    results.push_back(RunClass(d, klass,
                               MakeProbes(d.graph, klass, num_probes),
                               cfg, repeats));
  }

  bool identical = true;
  for (const auto& r : results) identical &= r.identical;
  const double sel_reduction = FullScoreReduction(results[0]);
  // The 3x acceptance gate holds at full scale; the CI --quick smoke runs
  // a 5x smaller graph whose unions barely clear the first waves, so it
  // gates at a correspondingly smaller reduction.
  const double gate = quick ? 1.5 : 3.0;
  const bool reduced = sel_reduction >= gate;
  const bool ok = identical && reduced;

  std::printf("{\n");
  std::printf("  \"bench\": \"candidate_retrieval\",\n");
  PrintHostJson();
  std::printf(
      "  \"dataset\": {\"name\": \"%s\", \"nodes\": %zu, \"edges\": %zu},\n",
      d.name.c_str(), d.graph.node_count(), d.graph.edge_count());
  std::printf(
      "  \"workload\": {\"probes_per_class\": %zu, \"repeats\": %d, "
      "\"max_candidates\": %zu, \"quick\": %s},\n",
      num_probes, repeats, cfg.max_candidates, quick ? "true" : "false");
  for (size_t i = 0; i < results.size(); ++i) {
    PrintClass(results[i], /*last=*/false);
  }
  std::printf(
      "  \"identity\": {\"all_classes_identical\": %s, "
      "\"selective_reduction\": %.1f, \"reduction_gate\": %.1f, "
      "\"reduction_gate_met\": %s}\n",
      identical ? "true" : "false", sel_reduction, gate,
      reduced ? "true" : "false");
  std::printf("}\n");

  std::fprintf(stderr, "identity: %s (selective reduction %.1fx, gate %.1fx)\n",
               ok ? "pruned lists bit-identical, reduction gate met"
                  : "FAILURE — retrieval divergence or insufficient reduction",
               sel_reduction, gate);
  return ok ? 0 : 1;
}
