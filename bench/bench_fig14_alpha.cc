// Exp-3 / Figure 14(a): the α-scheme. Average general-query (join)
// runtime as α varies, per decomposition method, k = 100, d = 1 on the
// DBpedia-like graph. Paper shape: a well-chosen α reduces runtime;
// Rand/SimSize sit at α = 0.5 by symmetry.

#include "bench_util.h"

int main() {
  using namespace star;
  using namespace star::bench;

  const size_t n = EnvSize("STAR_BENCH_NODES", 20000);
  const size_t num_queries = EnvSize("STAR_BENCH_QUERIES", 16);
  const auto d = MakeDataset(graph::DBpediaLike(n));
  const auto match = BenchConfig(/*d=*/1);

  query::WorkloadGenerator wg(d.graph, 314);
  const auto queries = wg.GraphWorkload(static_cast<int>(num_queries), 4, 4,
                                        BenchWorkloadOptions());

  PrintTitle("Figure 14(a) (" + d.name +
             "): avg join runtime [ms] (avg total depth D) vs alpha, "
             "k=100, d=1");
  const std::vector<double> alphas = {0.1, 0.3, 0.5, 0.7, 0.9};
  std::printf("%-9s", "method");
  for (const double a : alphas) std::printf("        a=%.1f", a);
  std::printf("\n");

  for (const auto strategy :
       {core::DecompositionStrategy::kMaxDeg,
        core::DecompositionStrategy::kSimTop,
        core::DecompositionStrategy::kSimDec}) {
    std::printf("%-9s", DecompositionName(strategy));
    for (const double alpha : alphas) {
      RunOptions opts;
      opts.k = 100;
      opts.alpha = alpha;
      opts.decomposition = strategy;
      const auto ws = RunWorkload(Engine::kStard, d, match, queries, opts);
      // Depth D = sum of star search depths; the paper's own effectiveness
      // metric for the alpha-scheme (§VI-A).
      std::printf(" %6.1f(%4.0f)", ws.per_query_ms.Mean(),
                  ws.depth.Sum() / std::max<size_t>(1, queries.size()));
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf(
      "(Rand and SimSize use alpha=0.5 by their symmetric nature, per the "
      "paper)\n");
  return 0;
}
