// Exp-3 / Figure 14(c,d): general-query (join) runtime and total search
// depth (with across-star deviation) vs query shape Q(nodes, edges).
// Paper shape: larger queries decompose into more stars and join slower;
// SimDec achieves the smallest and most balanced per-star search depth.

#include "bench_util.h"

int main() {
  using namespace star;
  using namespace star::bench;

  const size_t n = EnvSize("STAR_BENCH_NODES", 20000);
  const size_t num_queries = EnvSize("STAR_BENCH_QUERIES", 16);
  const auto d = MakeDataset(graph::DBpediaLike(n));
  const auto match = BenchConfig(/*d=*/1);

  const std::vector<std::pair<int, int>> shapes = {
      {3, 3}, {4, 4}, {4, 5}, {5, 6}};
  const std::vector<std::pair<core::DecompositionStrategy, double>> methods = {
      {core::DecompositionStrategy::kRand, 0.5},
      {core::DecompositionStrategy::kMaxDeg, 0.3},
      {core::DecompositionStrategy::kSimSize, 0.5},
      {core::DecompositionStrategy::kSimTop, 0.3},
      {core::DecompositionStrategy::kSimDec, 0.9},
  };

  PrintTitle("Figure 14(c) (" + d.name +
             "): avg join runtime [ms] vs query shape, k=20, d=1");
  std::printf("%-9s", "Q(n,e)");
  for (const auto& [s, a] : methods) std::printf(" %9s", DecompositionName(s));
  std::printf("\n");

  // Depth table gathered in the same pass.
  std::vector<std::string> depth_rows;
  for (const auto& [nodes, edges] : shapes) {
    query::WorkloadGenerator wg(d.graph, 100 * nodes + edges);
    const auto queries = wg.GraphWorkload(static_cast<int>(num_queries),
                                          nodes, edges,
                                          BenchWorkloadOptions());
    std::printf("Q(%d,%d)  ", nodes, edges);
    char depth_row[256];
    int off = std::snprintf(depth_row, sizeof(depth_row), "Q(%d,%d)  ", nodes,
                            edges);
    for (const auto& [strategy, alpha] : methods) {
      RunOptions opts;
      opts.k = 20;
      opts.alpha = alpha;
      opts.decomposition = strategy;
      const auto ws = RunWorkload(Engine::kStard, d, match, queries, opts);
      std::printf(" %9.1f", ws.per_query_ms.Mean());
      std::fflush(stdout);
      off += std::snprintf(depth_row + off, sizeof(depth_row) - off,
                           " %6.1f±%-5.1f", ws.depth.Mean(),
                           ws.depth_stddev.Mean());
    }
    std::printf("\n");
    depth_rows.emplace_back(depth_row);
  }

  std::printf("\n");
  PrintTitle("Figure 14(d) (" + d.name +
             "): avg per-star search depth ± across-star deviation");
  std::printf("%-9s", "Q(n,e)");
  for (const auto& [s, a] : methods) std::printf(" %12s", DecompositionName(s));
  std::printf("\n");
  for (const auto& row : depth_rows) std::printf("%s\n", row.c_str());
  return 0;
}
