// Figure 11: the long-tail distribution of star-match scores that
// motivates the SimDec decomposition heuristic (§VI-B). For a set of star
// queries we stream matches in score order and print the score at
// increasing ranks: a steep head followed by a long flat tail.

#include "bench_util.h"
#include "core/star_search.h"

int main() {
  using namespace star;
  using namespace star::bench;

  const size_t n = EnvSize("STAR_BENCH_NODES", 20000);
  const size_t num_queries = EnvSize("STAR_BENCH_QUERIES", 8);
  auto d = MakeDataset(graph::DBpediaLike(n));
  const auto match = BenchConfig(/*d=*/1);

  query::WorkloadGenerator wg(d.graph, 2016);
  auto wo = BenchWorkloadOptions();
  wo.partial_label = 0.9;  // ambiguous keywords -> deep match lists
  wo.keep_type = 0.2;
  wo.label_noise = 0.0;    // pure ambiguity; typos are not the point here

  PrintTitle("Figure 11: match score distribution of star queries (" +
             d.name + ")");
  const std::vector<size_t> ranks = {1, 2, 5, 10, 20, 50, 100, 200, 500};
  std::printf("%-8s", "query");
  for (const size_t r : ranks) std::printf(" rank%-5zu", r);
  std::printf("\n");

  StatAccumulator head_tail_ratio;
  for (size_t i = 0; i < num_queries; ++i) {
    const auto q = wg.RandomStarQuery(2 + i % 2, wo);
    scoring::QueryScorer scorer(d.graph, q, *d.ensemble, match,
                                d.index.get());
    core::StarSearch::Options so;
    so.strategy = core::StarStrategy::kStard;
    core::StarSearch search(scorer, core::MakeStarQuery(q), so);

    std::vector<double> scores;
    while (scores.size() < ranks.back()) {
      const auto m = search.Next();
      if (!m.has_value()) break;
      scores.push_back(m->score);
    }
    std::printf("Q%-7zu", i + 1);
    for (const size_t r : ranks) {
      if (r <= scores.size()) {
        std::printf(" %8.3f", scores[r - 1]);
      } else {
        std::printf(" %8s", "-");
      }
    }
    std::printf("\n");
    if (scores.size() >= 50) {
      head_tail_ratio.Add((scores[0] - scores[49]) /
                          std::max(1e-9, scores[0]));
    }
  }
  std::printf(
      "\nlong-tail check: mean relative score drop from rank 1 to rank 50 = "
      "%.2f\n(the paper's Fig. 11: scores fall fast over the first ranks, "
      "then flatten)\n",
      head_tail_ratio.Mean());
  return 0;
}
