// Cross-query reuse benchmark: drives serve::QueryService with a
// template-skewed workload (a small pool of query templates, each
// submitted many times) and compares throughput/latency with the
// star-level reuse cache + single-flight coalescing ON vs OFF. The result
// cache is disabled in BOTH arms, so the measured gap is attributable to
// star-prefix replay, candidate-list seeding, and coalescing — not to
// whole-result memoization. JSON on stdout (BENCH_reuse.json).
//
// Every OK response is checked bitwise against a direct
// StarFramework::TopK run of the same query — the process exits non-zero
// if warm/coalesced serving ever diverges from direct execution.
//
// Environment overrides:
//   STAR_BENCH_NODES       dataset size (default 10000)
//   STAR_REUSE_REQUESTS    requests per scenario (default 96)
//   STAR_REUSE_TEMPLATES   distinct queries in the pool (default 8)

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "serve/query_service.h"

namespace star::bench {
namespace {

struct Scenario {
  int clients;
  bool reuse;  // star cache + coalescing on?
};

struct ScenarioResult {
  Scenario scenario;
  size_t requests = 0;
  double wall_s = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  uint64_t toplist_hits = 0;
  uint64_t candidate_hits = 0;
  uint64_t coalesced = 0;
  size_t mismatches = 0;
  size_t errors = 0;
};

bool SameMatches(const std::vector<core::GraphMatch>& a,
                 const std::vector<core::GraphMatch>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].mapping != b[i].mapping || a[i].score != b[i].score) return false;
  }
  return true;
}

ScenarioResult RunScenario(const Dataset& d, const core::StarOptions& star,
                           const std::vector<query::QueryGraph>& pool,
                           const std::vector<std::vector<core::GraphMatch>>&
                               expected,
                           const Scenario& sc, size_t total_requests,
                           size_t k) {
  serve::ServiceOptions so;
  so.star = star;
  so.max_inflight = sc.clients;
  so.max_queue = total_requests;  // this bench measures latency, not shed load
  so.cache_capacity = 0;  // whole-result memoization off in BOTH arms
  so.star_cache_capacity = sc.reuse ? 4096 : 0;
  so.enable_coalescing = sc.reuse;

  serve::QueryService service(d.graph, *d.ensemble, d.index.get(), so);

  std::atomic<size_t> next{0};
  std::atomic<size_t> mismatches{0};
  std::atomic<size_t> errors{0};
  std::vector<std::vector<double>> latencies(sc.clients);

  WallTimer wall;
  std::vector<std::thread> clients;
  for (int c = 0; c < sc.clients; ++c) {
    clients.emplace_back([&, c] {
      latencies[c].reserve(total_requests / sc.clients + 1);
      for (;;) {
        const size_t i = next.fetch_add(1);
        if (i >= total_requests) return;
        const size_t qi = i % pool.size();
        serve::QueryRequest req;
        req.query = pool[qi];
        req.k = k;
        WallTimer t;
        const serve::QueryResponse resp = service.Execute(std::move(req));
        latencies[c].push_back(t.ElapsedMillis());
        if (!resp.status.ok()) {
          errors.fetch_add(1);
        } else if (!SameMatches(resp.matches, expected[qi])) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();

  ScenarioResult r;
  r.scenario = sc;
  r.requests = total_requests;
  r.wall_s = wall.ElapsedSeconds();
  r.qps = total_requests / r.wall_s;
  StatAccumulator acc;
  for (const auto& per_client : latencies) {
    for (const double ms : per_client) acc.Add(ms);
  }
  r.p50_ms = acc.Percentile(0.50);
  r.p95_ms = acc.Percentile(0.95);
  r.p99_ms = acc.Percentile(0.99);
  const serve::StarCacheStats cs = service.star_cache_stats();
  r.toplist_hits = cs.toplist_hits;
  r.candidate_hits = cs.candidate_hits;
  r.coalesced = service.stats().coalesced_followers;
  r.mismatches = mismatches.load();
  r.errors = errors.load();
  return r;
}

}  // namespace
}  // namespace star::bench

int main() {
  using namespace star;
  using namespace star::bench;

  const size_t nodes = EnvSize("STAR_BENCH_NODES", 10000);
  const size_t total_requests = EnvSize("STAR_REUSE_REQUESTS", 96);
  const size_t templates = EnvSize("STAR_REUSE_TEMPLATES", 8);
  const size_t k = 10;
  const Dataset d = MakeDataset(graph::DBpediaLike(nodes));

  core::StarOptions star;
  star.match = BenchConfig(1);

  query::WorkloadGenerator wg(d.graph, /*seed=*/83);
  std::vector<query::QueryGraph> pool;
  std::vector<std::vector<core::GraphMatch>> expected;
  for (size_t i = 0; i < templates; ++i) {
    pool.push_back(wg.RandomStarQuery(3, BenchWorkloadOptions()));
    core::StarFramework fw(d.graph, *d.ensemble, d.index.get(), star);
    expected.push_back(fw.TopK(pool.back(), k));
  }

  const std::vector<Scenario> scenarios = {
      {1, false}, {1, true},  // single client: pure replay speedup
      {4, false}, {4, true},
      {8, false}, {8, true},  // concurrency: replay + coalescing
  };

  std::vector<ScenarioResult> results;
  for (const Scenario& sc : scenarios) {
    results.push_back(
        RunScenario(d, star, pool, expected, sc, total_requests, k));
    const ScenarioResult& r = results.back();
    std::fprintf(stderr,
                 "[reuse] clients=%d reuse=%s qps=%.1f p50=%.2fms p95=%.2fms "
                 "(toplist hits %llu, cand hits %llu, coalesced %llu, "
                 "%zu mismatches, %zu errors)\n",
                 sc.clients, sc.reuse ? "on" : "off", r.qps, r.p50_ms,
                 r.p95_ms, static_cast<unsigned long long>(r.toplist_hits),
                 static_cast<unsigned long long>(r.candidate_hits),
                 static_cast<unsigned long long>(r.coalesced), r.mismatches,
                 r.errors);
  }

  size_t total_mismatches = 0, total_errors = 0;
  for (const ScenarioResult& r : results) {
    total_mismatches += r.mismatches;
    total_errors += r.errors;
  }
  const bool ok = total_mismatches == 0 && total_errors == 0;

  // Paired off→on speedups per client count (same workload, same machine).
  std::printf("{\n");
  std::printf("  \"bench\": \"template_reuse\",\n");
  PrintHostJson();
  std::printf("  \"dataset\": {\"name\": \"%s\", \"nodes\": %zu, \"edges\": %zu},\n",
              d.name.c_str(), d.graph.node_count(), d.graph.edge_count());
  std::printf(
      "  \"workload\": {\"requests_per_scenario\": %zu, \"templates\": %zu, "
      "\"k\": %zu},\n",
      total_requests, templates, k);
  std::printf("  \"scenarios\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const ScenarioResult& r = results[i];
    std::printf(
        "    {\"clients\": %d, \"reuse\": %s, \"qps\": %.1f, "
        "\"p50_ms\": %.3f, \"p95_ms\": %.3f, \"p99_ms\": %.3f, "
        "\"toplist_hits\": %llu, \"candidate_hits\": %llu, "
        "\"coalesced_followers\": %llu}%s\n",
        r.scenario.clients, r.scenario.reuse ? "true" : "false", r.qps,
        r.p50_ms, r.p95_ms, r.p99_ms,
        static_cast<unsigned long long>(r.toplist_hits),
        static_cast<unsigned long long>(r.candidate_hits),
        static_cast<unsigned long long>(r.coalesced),
        i + 1 < results.size() ? "," : "");
  }
  std::printf("  ],\n");
  std::printf("  \"speedups\": [\n");
  for (size_t i = 0; i + 1 < results.size(); i += 2) {
    const ScenarioResult& off = results[i];
    const ScenarioResult& on = results[i + 1];
    std::printf(
        "    {\"clients\": %d, \"qps_speedup\": %.2f, \"p95_reduction\": "
        "%.2f}%s\n",
        off.scenario.clients, on.qps / off.qps,
        on.p95_ms > 0 ? off.p95_ms / on.p95_ms : 0.0,
        i + 2 < results.size() ? "," : "");
  }
  std::printf("  ],\n");
  std::printf("  \"identity\": {\"mismatches\": %zu, \"errors\": %zu, \"served_equals_direct\": %s}\n",
              total_mismatches, total_errors, ok ? "true" : "false");
  std::printf("}\n");

  std::fprintf(stderr, "identity: %s\n",
               ok ? "warm/coalesced results bitwise identical to direct TopK"
                  : "MISMATCH — reuse diverges from direct execution");
  return ok ? 0 : 1;
}
