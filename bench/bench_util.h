#ifndef STAR_BENCH_BENCH_UTIL_H_
#define STAR_BENCH_BENCH_UTIL_H_

// Shared scaffolding for the per-figure benchmark binaries: graph + context
// construction, a uniform engine runner, and fixed-width table printing.
//
// Every binary prints the rows of one paper table/figure. Scales are
// laptop-sized (see DESIGN.md): the goal is the *shape* of each comparison
// (who wins, by what factor, where crossovers fall), not absolute numbers.
//
// Environment overrides:
//   STAR_BENCH_NODES    graph size (default per binary)
//   STAR_BENCH_QUERIES  queries per workload (default per binary)
//   STAR_THREADS        worker threads for the parallel engine when a
//                       binary leaves MatchConfig::threads = 0 (auto);
//                       bench_parallel_scaling sets threads explicitly
//                       per pass instead (see DESIGN.md "Threading model")

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "baseline/belief_propagation.h"
#include "baseline/graph_ta.h"
#include "common/timer.h"
#include "core/framework.h"
#include "graph/graph_generator.h"
#include "graph/knowledge_graph.h"
#include "graph/label_index.h"
#include "query/query_graph.h"
#include "query/workload.h"
#include "scoring/match_config.h"
#include "scoring/query_scorer.h"
#include "text/ensemble.h"
#include "text/synonym_dictionary.h"
#include "text/tfidf.h"
#include "text/type_ontology.h"

namespace star::bench {

inline size_t EnvSize(const char* name, size_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::strtoul(v, nullptr, 10) : fallback;
}

/// Compiler id + version of the build that produced this binary.
inline std::string CompilerString() {
#if defined(__clang__)
  return std::string("clang ") + std::to_string(__clang_major__) + "." +
         std::to_string(__clang_minor__) + "." +
         std::to_string(__clang_patchlevel__);
#elif defined(__GNUC__)
  return std::string("gcc ") + std::to_string(__GNUC__) + "." +
         std::to_string(__GNUC_MINOR__) + "." +
         std::to_string(__GNUC_PATCHLEVEL__);
#else
  return "unknown";
#endif
}

/// One-line JSON object describing the host and build that produced a
/// measurement. Committed BENCH_*.json numbers are only comparable within
/// a host class, so every emitter includes this verbatim — in particular
/// `hardware_threads` is what qualifies (or disqualifies) any scaling or
/// throughput claim the surrounding numbers appear to make.
/// STAR_BENCH_BUILD_TYPE / STAR_BENCH_BUILD_FLAGS are baked in by
/// bench/CMakeLists.txt; they fall back to "unknown" for ad-hoc builds.
inline std::string HostJson() {
#if !defined(STAR_BENCH_BUILD_TYPE)
#define STAR_BENCH_BUILD_TYPE "unknown"
#endif
#if !defined(STAR_BENCH_BUILD_FLAGS)
#define STAR_BENCH_BUILD_FLAGS "unknown"
#endif
  std::string s = "{\"hardware_threads\": ";
  s += std::to_string(std::thread::hardware_concurrency());
  s += ", \"compiler\": \"" + CompilerString() + "\"";
  s += ", \"build_type\": \"" STAR_BENCH_BUILD_TYPE "\"";
  s += ", \"flags\": \"" STAR_BENCH_BUILD_FLAGS "\"}";
  return s;
}

/// Prints the shared `"host"` member for a top-level JSON object.
inline void PrintHostJson() {
  std::printf("  \"host\": %s,\n", HostJson().c_str());
}

/// Owns a generated graph plus everything the scorers need.
struct Dataset {
  std::string name;
  graph::KnowledgeGraph graph;
  std::unique_ptr<graph::LabelIndex> index;
  text::SynonymDictionary synonyms;
  text::TypeOntology ontology;
  text::TfIdfModel tfidf;
  std::unique_ptr<text::SimilarityEnsemble> ensemble;

  Dataset(std::string dataset_name, graph::KnowledgeGraph g)
      : name(std::move(dataset_name)),
        graph(std::move(g)),
        synonyms(text::SynonymDictionary::BuiltIn()),
        ontology(text::TypeOntology::BuiltIn()) {
    index = std::make_unique<graph::LabelIndex>(graph);
    for (graph::NodeId v = 0; v < graph.node_count(); ++v) {
      tfidf.AddDocument(graph.NodeLabel(v));
    }
    tfidf.Finalize();
    text::SimilarityEnsemble::Context ctx;
    ctx.synonyms = &synonyms;
    ctx.ontology = &ontology;
    ctx.tfidf = &tfidf;
    ensemble = std::make_unique<text::SimilarityEnsemble>(ctx);
  }
};

inline Dataset MakeDataset(const graph::GeneratorConfig& config) {
  WallTimer t;
  Dataset d(config.name, graph::GenerateGraph(config));
  std::fprintf(stderr, "[setup] %s: %zu nodes, %zu edges (%.1fs)\n",
               d.name.c_str(), d.graph.node_count(), d.graph.edge_count(),
               t.ElapsedSeconds());
  return d;
}

/// Benchmark-wide default matching semantics.
inline scoring::MatchConfig BenchConfig(int d) {
  scoring::MatchConfig cfg;
  cfg.d = d;
  cfg.node_threshold = 0.40;
  cfg.edge_threshold = 0.05;
  cfg.lambda = 0.5;
  cfg.max_candidates = 4000;
  cfg.max_retrieval = 4000;
  return cfg;
}

/// DBPSB-style workload defaults (§VII-A): <= 50% variables, noisy labels.
inline query::WorkloadOptions BenchWorkloadOptions() {
  query::WorkloadOptions wo;
  wo.variable_fraction = 0.25;
  wo.label_noise = 0.5;
  wo.partial_label = 0.5;  // ambiguous "Brad"-style keywords (Example 1)
  wo.keep_relation = 0.5;
  wo.keep_type = 0.5;
  return wo;
}

enum class Engine { kStark, kStard, kGraphTa, kBp };

inline const char* EngineName(Engine e) {
  switch (e) {
    case Engine::kStark: return "stark";
    case Engine::kStard: return "stard";
    case Engine::kGraphTa: return "graphTA";
    case Engine::kBp: return "BP";
  }
  return "?";
}

struct RunOptions {
  size_t k = 20;
  /// Per-query wall-clock cap for the baselines (0 = none). STAR engines
  /// never need one.
  double budget_ms = 5000.0;
  size_t bp_domain_cap = 500;
  core::DecompositionStrategy decomposition =
      core::DecompositionStrategy::kSimDec;
  double alpha = 0.5;
};

struct WorkloadStats {
  StatAccumulator per_query_ms;
  size_t matches = 0;
  size_t timeouts = 0;
  StatAccumulator depth;        // per-star search depth (join workloads)
  StatAccumulator depth_stddev;  // per-query across-star depth deviation
};

/// Runs one query through one engine and appends to `ws`.
inline void RunQuery(Engine engine, const Dataset& d,
                     const scoring::MatchConfig& match,
                     const query::QueryGraph& q, const RunOptions& opts,
                     WorkloadStats& ws) {
  WallTimer timer;
  switch (engine) {
    case Engine::kStark:
    case Engine::kStard: {
      core::StarOptions so;
      so.strategy = engine == Engine::kStark ? core::StarStrategy::kStark
                                             : core::StarStrategy::kStard;
      so.match = match;
      so.alpha = opts.alpha;
      so.decomposition.strategy = opts.decomposition;
      core::StarFramework fw(d.graph, *d.ensemble, d.index.get(), so);
      ws.matches += fw.TopK(q, opts.k).size();
      const auto& st = fw.last_stats();
      for (const size_t dep : st.star_depths) ws.depth.Add(double(dep));
      if (st.star_depths.size() > 1) {
        StatAccumulator per_star;
        for (const size_t dep : st.star_depths) per_star.Add(double(dep));
        ws.depth_stddev.Add(per_star.StdDev());
      }
      break;
    }
    case Engine::kGraphTa: {
      scoring::QueryScorer scorer(d.graph, q, *d.ensemble, match,
                                  d.index.get());
      baseline::GraphTa ta(scorer, opts.budget_ms);
      ws.matches += ta.TopK(opts.k).size();
      ws.timeouts += ta.stats().timed_out;
      break;
    }
    case Engine::kBp: {
      scoring::QueryScorer scorer(d.graph, q, *d.ensemble, match,
                                  d.index.get());
      baseline::BpOptions bpo;
      bpo.domain_cap = opts.bp_domain_cap;
      bpo.budget_ms = opts.budget_ms;
      baseline::BeliefPropagation bp(scorer, bpo);
      ws.matches += bp.TopK(opts.k).size();
      ws.timeouts += bp.stats().timed_out;
      break;
    }
  }
  ws.per_query_ms.Add(timer.ElapsedMillis());
}

inline WorkloadStats RunWorkload(Engine engine, const Dataset& d,
                                 const scoring::MatchConfig& match,
                                 const std::vector<query::QueryGraph>& queries,
                                 const RunOptions& opts) {
  WorkloadStats ws;
  for (const auto& q : queries) RunQuery(engine, d, match, q, opts, ws);
  return ws;
}

inline const char* DecompositionName(core::DecompositionStrategy s) {
  switch (s) {
    case core::DecompositionStrategy::kRand: return "Rand";
    case core::DecompositionStrategy::kMaxDeg: return "MaxDeg";
    case core::DecompositionStrategy::kSimSize: return "SimSize";
    case core::DecompositionStrategy::kSimTop: return "SimTop";
    case core::DecompositionStrategy::kSimDec: return "SimDec";
  }
  return "?";
}

inline void PrintRule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

inline void PrintTitle(const std::string& title) {
  PrintRule();
  std::printf("%s\n", title.c_str());
  PrintRule();
}

}  // namespace star::bench

#endif  // STAR_BENCH_BENCH_UTIL_H_
