// Ablations of the design choices DESIGN.md calls out:
//  (1) pivot-set identification strategy: stark (eager traversal per
//      candidate) vs stard (message passing) vs the §V-C hybrid
//      (closed-form bound descent) — runtime and per-pivot traversals;
//  (2) Prop. 3 list pruning on vs off inside the per-pivot enumerators.

#include "bench_util.h"
#include "core/star_search.h"

int main() {
  using namespace star;
  using namespace star::bench;

  const size_t n = EnvSize("STAR_BENCH_NODES", 20000);
  const size_t num_queries = EnvSize("STAR_BENCH_QUERIES", 10);
  const auto d = MakeDataset(graph::DBpediaLike(n));

  query::WorkloadGenerator wg(d.graph, 4242);
  auto wo = BenchWorkloadOptions();
  wo.partial_label = 0.8;  // ambiguous pivots: many candidates
  const auto queries =
      wg.StarWorkload(static_cast<int>(num_queries), 3, 5, wo);

  // --- (1) pivot-set identification --------------------------------------
  PrintTitle("Ablation 1: pivot-set identification, k=20 (" + d.name + ")");
  std::printf("%-9s %28s %28s %28s\n", "", "stark", "stard", "hybrid");
  std::printf("%-9s %14s %13s %14s %13s %14s %13s\n", "d", "ms", "enums",
              "ms", "enums", "ms", "enums");
  for (int bound = 1; bound <= 3; ++bound) {
    const auto match = BenchConfig(bound);
    std::printf("%-9d", bound);
    for (const auto strategy :
         {core::StarStrategy::kStark, core::StarStrategy::kStard,
          core::StarStrategy::kHybrid}) {
      StatAccumulator ms;
      size_t enums = 0;
      for (const auto& q : queries) {
        scoring::QueryScorer scorer(d.graph, q, *d.ensemble, match,
                                    d.index.get());
        WallTimer t;
        core::StarSearch::Options so;
        so.strategy = strategy;
        so.k_hint = 20;
        core::StarSearch search(scorer, core::MakeStarQuery(q), so);
        search.TopK(20);
        ms.Add(t.ElapsedMillis());
        enums += search.stats().enumerators_built;
      }
      std::printf(" %14.1f %13.1f", ms.Mean(),
                  static_cast<double>(enums) / queries.size());
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("(enums = exact per-pivot traversals per query; stark always "
              "pays one per candidate)\n\n");

  // --- (2) Prop. 3 pruning ------------------------------------------------
  PrintTitle("Ablation 2: Prop. 3 leaf-list pruning in the enumerators, d=2");
  std::printf("%-11s %14s %14s\n", "k", "pruned [ms]", "unpruned [ms]");
  const auto match = BenchConfig(2);
  for (const size_t k : {size_t{10}, size_t{50}, size_t{200}}) {
    std::printf("%-11zu", k);
    for (const size_t k_hint : {k, size_t{0}}) {
      StatAccumulator ms;
      for (const auto& q : queries) {
        scoring::QueryScorer scorer(d.graph, q, *d.ensemble, match,
                                    d.index.get());
        WallTimer t;
        core::StarSearch::Options so;
        so.strategy = core::StarStrategy::kStard;
        so.k_hint = k_hint;
        core::StarSearch search(scorer, core::MakeStarQuery(q), so);
        search.TopK(k);
        ms.Add(t.ElapsedMillis());
      }
      std::printf(" %14.1f", ms.Mean());
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
