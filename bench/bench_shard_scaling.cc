// Sharded-execution scaling benchmark: drives serve::QueryService at
// shard counts {1, 2, 4} across cache-hit-ratio scenarios and reports QPS
// and latency percentiles (p50/p95) per cell, as JSON on stdout so runs
// can be committed/diffed (BENCH_shard.json).
//
// Two gates make the numbers trustworthy:
//  - Identity: every OK response (any shard count, cached or fresh) is
//    checked bitwise against a direct StarFramework::TopK run of the same
//    query; the process exits non-zero on any divergence.
//  - Early termination: the same query pool runs through ShardEngine in
//    lazy (bound-driven merge) and eager_gather (drain-everything) modes;
//    lazy must issue strictly fewer shard pulls, quantifying how much
//    cross-shard work the certified bounds prune.
//
// Usage: bench_shard_scaling [--quick]
//   --quick shrinks the dataset and request count for CI smoke runs.
//
// Environment overrides:
//   STAR_BENCH_NODES     dataset size (default 10000; 2000 with --quick)
//   STAR_SHARD_REQUESTS  requests per scenario (default 96; 24 with --quick)

#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "serve/query_service.h"
#include "shard/coordinator.h"
#include "shard/partitioner.h"

namespace star::bench {
namespace {

struct Scenario {
  size_t shards;  // 1 = single-process backend
  double target_hit_ratio;
};

struct ScenarioResult {
  Scenario scenario;
  size_t requests = 0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double observed_hit_rate = 0.0;
  uint64_t shard_pulls = 0;
  size_t mismatches = 0;
  size_t errors = 0;
};

struct PullCounts {
  size_t shards = 0;
  size_t lazy = 0;
  size_t eager = 0;
  size_t mismatches = 0;
};

bool SameMatches(const std::vector<core::GraphMatch>& a,
                 const std::vector<core::GraphMatch>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].mapping != b[i].mapping || a[i].score != b[i].score) return false;
  }
  return true;
}

ScenarioResult RunScenario(const Dataset& d, const core::StarOptions& star,
                           const std::vector<query::QueryGraph>& pool,
                           const std::vector<std::vector<core::GraphMatch>>&
                               expected,
                           const Scenario& sc, size_t total_requests,
                           size_t k) {
  const bool cache_on = sc.target_hit_ratio > 0.0;
  // With D distinct queries over T requests and an LRU holding them all,
  // hit rate converges to (T - D) / T (same model as bench_serve).
  const size_t distinct = std::max<size_t>(
      1, cache_on ? static_cast<size_t>(
                        total_requests * (1.0 - sc.target_hit_ratio) + 0.5)
                  : pool.size());
  const size_t use = std::min(distinct, pool.size());

  serve::ServiceOptions so;
  so.star = star;
  so.max_inflight = 4;
  so.max_queue = total_requests;
  so.cache_capacity = cache_on ? use : 0;
  so.shards = sc.shards;

  serve::QueryService service(d.graph, *d.ensemble, d.index.get(), so);

  constexpr int kClients = 4;
  std::atomic<size_t> next{0};
  std::atomic<size_t> mismatches{0};
  std::atomic<size_t> errors{0};
  std::vector<std::vector<double>> latencies(kClients);

  WallTimer wall;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      latencies[c].reserve(total_requests / kClients + 1);
      for (;;) {
        const size_t i = next.fetch_add(1);
        if (i >= total_requests) return;
        const size_t qi = i % use;
        serve::QueryRequest req;
        req.query = pool[qi];
        req.k = k;
        req.use_cache = cache_on;
        WallTimer t;
        const serve::QueryResponse resp = service.Execute(std::move(req));
        latencies[c].push_back(t.ElapsedMillis());
        if (!resp.status.ok()) {
          errors.fetch_add(1);
        } else if (!SameMatches(resp.matches, expected[qi])) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();

  ScenarioResult r;
  r.scenario = sc;
  r.requests = total_requests;
  r.qps = total_requests / wall.ElapsedSeconds();
  StatAccumulator acc;
  for (const auto& per_client : latencies) {
    for (const double ms : per_client) acc.Add(ms);
  }
  r.p50_ms = acc.Percentile(0.50);
  r.p95_ms = acc.Percentile(0.95);
  r.observed_hit_rate = service.stats().cache_hit_rate();
  r.shard_pulls = service.stats().shard_pulls;
  r.mismatches = mismatches.load();
  r.errors = errors.load();
  return r;
}

/// Lazy bound-driven merging vs eager full gather over one cluster: the
/// pull-counter gap is the early-termination saving the coordinator's
/// certified shard bounds buy.
PullCounts CountPulls(const Dataset& d, const core::StarOptions& star,
                      const std::vector<query::QueryGraph>& pool,
                      const std::vector<std::vector<core::GraphMatch>>&
                          expected,
                      size_t shards, size_t k) {
  shard::ShardCluster::Options co;
  co.partition.shards = shards;
  co.partition.halo_depth = std::max(1, star.match.d);
  shard::ShardCluster cluster(d.graph, *d.ensemble, d.index.get(),
                              std::move(co));

  PullCounts pc;
  pc.shards = shards;
  for (bool eager : {false, true}) {
    for (size_t qi = 0; qi < pool.size(); ++qi) {
      shard::ShardEngine::Options eo;
      eo.star = star;
      eo.eager_gather = eager;
      shard::ShardEngine engine(cluster, eo);
      const auto got = engine.TopK(pool[qi], k);
      (eager ? pc.eager : pc.lazy) +=
          engine.last_stats().shard.total_pulls;
      // The eager mode drains streams but must not change answers.
      if (!eager && !SameMatches(got, expected[qi])) ++pc.mismatches;
    }
  }
  return pc;
}

}  // namespace
}  // namespace star::bench

int main(int argc, char** argv) {
  using namespace star;
  using namespace star::bench;

  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  const size_t nodes = EnvSize("STAR_BENCH_NODES", quick ? 2000 : 10000);
  const size_t total_requests =
      EnvSize("STAR_SHARD_REQUESTS", quick ? 24 : 96);
  const size_t k = 10;
  const Dataset d = MakeDataset(graph::DBpediaLike(nodes));

  core::StarOptions star;
  star.match = BenchConfig(1);

  const size_t pool_size = quick ? 12 : 48;
  query::WorkloadGenerator wg(d.graph, /*seed=*/83);
  std::vector<query::QueryGraph> pool;
  std::vector<std::vector<core::GraphMatch>> expected;
  for (size_t i = 0; i < pool_size; ++i) {
    pool.push_back(wg.RandomStarQuery(3, BenchWorkloadOptions()));
    core::StarFramework fw(d.graph, *d.ensemble, d.index.get(), star);
    expected.push_back(fw.TopK(pool.back(), k));
  }

  const std::vector<Scenario> scenarios = {
      {1, 0.0}, {1, 0.9},
      {2, 0.0}, {2, 0.9},
      {4, 0.0}, {4, 0.9},
  };

  std::vector<ScenarioResult> results;
  for (const Scenario& sc : scenarios) {
    results.push_back(
        RunScenario(d, star, pool, expected, sc, total_requests, k));
    const ScenarioResult& r = results.back();
    std::fprintf(stderr,
                 "[shard] shards=%zu hit=%.1f qps=%.1f p50=%.2fms p95=%.2fms "
                 "pulls=%llu (%zu mismatches, %zu errors)\n",
                 sc.shards, sc.target_hit_ratio, r.qps, r.p50_ms, r.p95_ms,
                 static_cast<unsigned long long>(r.shard_pulls), r.mismatches,
                 r.errors);
  }

  std::vector<PullCounts> pulls;
  for (const size_t shards : {size_t{2}, size_t{4}}) {
    pulls.push_back(CountPulls(d, star, pool, expected, shards, k));
    const PullCounts& pc = pulls.back();
    std::fprintf(stderr,
                 "[shard] early-termination shards=%zu: lazy=%zu eager=%zu "
                 "pulls (%.1f%% pruned)\n",
                 pc.shards, pc.lazy, pc.eager,
                 pc.eager == 0
                     ? 0.0
                     : 100.0 * (1.0 - double(pc.lazy) / double(pc.eager)));
  }

  size_t total_mismatches = 0, total_errors = 0;
  for (const ScenarioResult& r : results) {
    total_mismatches += r.mismatches;
    total_errors += r.errors;
  }
  bool pruned = true;
  for (const PullCounts& pc : pulls) {
    total_mismatches += pc.mismatches;
    if (pc.lazy >= pc.eager) pruned = false;
  }
  const bool ok = total_mismatches == 0 && total_errors == 0 && pruned;

  std::printf("{\n");
  std::printf("  \"bench\": \"shard_scaling\",\n");
  PrintHostJson();
  std::printf("  \"dataset\": {\"name\": \"%s\", \"nodes\": %zu, \"edges\": %zu},\n",
              d.name.c_str(), d.graph.node_count(), d.graph.edge_count());
  std::printf("  \"workload\": {\"requests_per_scenario\": %zu, \"k\": %zu, "
              "\"quick\": %s},\n",
              total_requests, k, quick ? "true" : "false");
  std::printf("  \"scenarios\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const ScenarioResult& r = results[i];
    std::printf(
        "    {\"shards\": %zu, \"target_hit_ratio\": %.1f, \"qps\": %.1f, "
        "\"p50_ms\": %.2f, \"p95_ms\": %.2f, \"observed_hit_rate\": %.3f, "
        "\"shard_pulls\": %llu}%s\n",
        r.scenario.shards, r.scenario.target_hit_ratio, r.qps, r.p50_ms,
        r.p95_ms, r.observed_hit_rate,
        static_cast<unsigned long long>(r.shard_pulls),
        i + 1 < results.size() ? "," : "");
  }
  std::printf("  ],\n");
  std::printf("  \"early_termination\": [\n");
  for (size_t i = 0; i < pulls.size(); ++i) {
    const PullCounts& pc = pulls[i];
    std::printf(
        "    {\"shards\": %zu, \"lazy_pulls\": %zu, \"eager_pulls\": %zu, "
        "\"pruned_fraction\": %.3f}%s\n",
        pc.shards, pc.lazy, pc.eager,
        pc.eager == 0 ? 0.0 : 1.0 - double(pc.lazy) / double(pc.eager),
        i + 1 < pulls.size() ? "," : "");
  }
  std::printf("  ],\n");
  std::printf("  \"identity\": {\"mismatches\": %zu, \"errors\": %zu, "
              "\"lazy_prunes_pulls\": %s, \"sharded_equals_direct\": %s}\n",
              total_mismatches, total_errors, pruned ? "true" : "false",
              ok ? "true" : "false");
  std::printf("}\n");

  std::fprintf(stderr, "identity: %s\n",
               ok ? "sharded results bitwise identical to direct TopK, "
                    "lazy merge prunes pulls"
                  : "FAILED — divergence or no early-termination saving");
  return ok ? 0 : 1;
}
