// Exp-3 / Figure 14(b): general-query (join) runtime vs k for the five
// decomposition methods. Paper shape: runtime grows with k; SimSize /
// SimTop / SimDec consistently beat Rand and MaxDeg, SimDec best (up to
// ~45% saving vs Rand).

#include "bench_util.h"

int main() {
  using namespace star;
  using namespace star::bench;

  const size_t n = EnvSize("STAR_BENCH_NODES", 20000);
  const size_t num_queries = EnvSize("STAR_BENCH_QUERIES", 16);
  const auto d = MakeDataset(graph::DBpediaLike(n));
  const auto match = BenchConfig(/*d=*/1);

  query::WorkloadGenerator wg(d.graph, 1618);
  const auto queries = wg.GraphWorkload(static_cast<int>(num_queries), 4, 4,
                                        BenchWorkloadOptions());

  // α per method, mirroring §VII's tuned values.
  const std::vector<std::pair<core::DecompositionStrategy, double>> methods = {
      {core::DecompositionStrategy::kRand, 0.5},
      {core::DecompositionStrategy::kMaxDeg, 0.3},
      {core::DecompositionStrategy::kSimSize, 0.5},
      {core::DecompositionStrategy::kSimTop, 0.3},
      {core::DecompositionStrategy::kSimDec, 0.9},
  };

  PrintTitle("Figure 14(b) (" + d.name +
             "): avg join runtime [ms] (avg total depth D) vs k, d=1");
  std::printf("%-9s", "k");
  for (const auto& [strategy, alpha] : methods) {
    std::printf(" %12s", DecompositionName(strategy));
  }
  std::printf("\n");
  for (const size_t k :
       {size_t{20}, size_t{40}, size_t{60}, size_t{80}, size_t{100}}) {
    std::printf("%-9zu", k);
    for (const auto& [strategy, alpha] : methods) {
      RunOptions opts;
      opts.k = k;
      opts.alpha = alpha;
      opts.decomposition = strategy;
      const auto ws = RunWorkload(Engine::kStard, d, match, queries, opts);
      std::printf(" %6.1f(%4.0f)", ws.per_query_ms.Mean(),
                  ws.depth.Sum() / std::max<size_t>(1, queries.size()));
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
