// Threshold-aware scoring kernel vs the canonical Score() path, with the
// bit-identity contract checked in-bench. Four measurements on the
// DBpediaLike preset:
//
//   1. per-pair: one query label against every graph label — Score(),
//      kernel exact mode (query side prepared once, allocation-free data
//      side), and kernel thresholded mode (weight-ordered early exit at
//      the candidate threshold).
//   2. bulk scan: Candidates() with no index (the paper's O(|V|) base
//      case, candidate scoring is the whole cost), kernel off vs on.
//   3. bulk indexed: Candidates() with the token/type index attached.
//   4. bulk batch: the scalar kernel ON in both passes, only the SoA
//      batched scorer toggled — isolates the batch layer's contribution.
//
// Every accepted kernel score is compared bitwise against Score(), and
// both bulk passes must produce byte-identical candidate lists; any
// mismatch fails the run (nonzero exit). Output is one JSON object so
// runs can be committed/diffed (BENCH_scoring.json).
//
// Environment overrides (also see bench_util.h):
//   STAR_BENCH_NODES    dataset size (default 20000)
//   STAR_BENCH_QUERIES  star queries per workload (default 6)

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/star_search.h"

namespace star::bench {
namespace {

struct PairBench {
  size_t pairs = 0;
  double score_ms = 0.0;
  double kernel_exact_ms = 0.0;
  double kernel_thresh_ms = 0.0;
  bool exact_bitwise = true;
  bool accepted_bitwise = true;
  text::KernelStats stats;
};

/// Non-wildcard query labels of a workload, deduplicated by position.
std::vector<std::string> QueryLabels(
    const std::vector<query::QueryGraph>& queries) {
  std::vector<std::string> labels;
  for (const auto& q : queries) {
    for (int u = 0; u < q.node_count(); ++u) {
      if (!q.node(u).wildcard) labels.push_back(q.node(u).label);
    }
  }
  return labels;
}

PairBench RunPairBench(const Dataset& d,
                       const std::vector<std::string>& labels,
                       double threshold) {
  const text::SimilarityEnsemble& e = *d.ensemble;
  PairBench r;
  std::vector<text::SimilarityEnsemble::PreparedLabel> prepared;
  prepared.reserve(labels.size());
  for (const auto& l : labels) prepared.push_back(e.Prepare(l));

  // Timed passes. The canonical path re-derives the query side per pair;
  // the kernel paths share the PreparedLabel built once above.
  {
    WallTimer t;
    double sink = 0.0;
    for (const auto& l : labels) {
      for (graph::NodeId v = 0; v < d.graph.node_count(); ++v) {
        sink += e.Score(l, d.graph.NodeLabel(v));
      }
    }
    r.score_ms = t.ElapsedMillis();
    if (sink < 0) std::printf("%f", sink);  // keep the loop alive
  }
  {
    WallTimer t;
    double sink = 0.0;
    for (const auto& p : prepared) {
      for (graph::NodeId v = 0; v < d.graph.node_count(); ++v) {
        sink += e.ScoreAgainstThreshold(
            p, d.graph.NodeLabel(v), text::SimilarityEnsemble::kNoThreshold);
      }
    }
    r.kernel_exact_ms = t.ElapsedMillis();
    if (sink < 0) std::printf("%f", sink);
  }
  {
    WallTimer t;
    double sink = 0.0;
    for (const auto& p : prepared) {
      for (graph::NodeId v = 0; v < d.graph.node_count(); ++v) {
        sink += e.ScoreAgainstThreshold(p, d.graph.NodeLabel(v), threshold);
      }
    }
    r.kernel_thresh_ms = t.ElapsedMillis();
    if (sink < 0) std::printf("%f", sink);
  }

  // Untimed identity sweep: exact mode must equal Score() bitwise on every
  // pair; thresholded results must equal Score() bitwise whenever accepted.
  for (size_t i = 0; i < labels.size(); ++i) {
    for (graph::NodeId v = 0; v < d.graph.node_count(); ++v) {
      const std::string_view dl = d.graph.NodeLabel(v);
      const double canonical = e.Score(labels[i], dl);
      const double exact = e.ScoreAgainstThreshold(
          prepared[i], dl, text::SimilarityEnsemble::kNoThreshold);
      const double thresh =
          e.ScoreAgainstThreshold(prepared[i], dl, threshold, -1, -1, &r.stats);
      r.exact_bitwise &= exact == canonical;
      r.accepted_bitwise &=
          thresh >= threshold ? thresh == canonical : canonical < threshold;
      ++r.pairs;
    }
  }
  return r;
}

struct BulkBench {
  double off_ms = 0.0;
  double on_ms = 0.0;
  bool identical = true;
  size_t candidates = 0;
};

template <typename A, typename B>
bool SameCandidates(const A& a, const B& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].node != b[i].node || a[i].score != b[i].score) return false;
  }
  return true;
}

/// Full Candidates() pass over every query node of every query, with a
/// fresh scorer per query (online scoring is the measured cost). When
/// `toggle_batch` is set the scalar kernel stays ON in both passes and
/// only the SoA batch layer is toggled, isolating the batch kernel's
/// contribution from the scalar early-exit kernel's.
BulkBench RunBulkBench(const Dataset& d,
                       const std::vector<query::QueryGraph>& queries,
                       bool with_index, bool toggle_batch = false) {
  BulkBench r;
  auto base = BenchConfig(/*d=*/2);
  base.threads = 1;  // isolate the kernel's effect from thread scaling
  const graph::LabelIndex* index = with_index ? d.index.get() : nullptr;
  for (const auto& q : queries) {
    auto off_cfg = base;
    auto on_cfg = base;
    if (toggle_batch) {
      off_cfg.use_scoring_kernel = true;
      off_cfg.use_batch_kernel = false;
      on_cfg.use_scoring_kernel = true;
      on_cfg.use_batch_kernel = true;
    } else {
      off_cfg.use_scoring_kernel = false;
      on_cfg.use_scoring_kernel = true;
    }

    std::vector<std::vector<scoring::ScoredCandidate>> off_lists;
    {
      WallTimer t;
      scoring::QueryScorer scorer(d.graph, q, *d.ensemble, off_cfg, index);
      for (int u = 0; u < q.node_count(); ++u) {
        const auto& list = scorer.Candidates(u);
        off_lists.emplace_back(list.begin(), list.end());
      }
      r.off_ms += t.ElapsedMillis();
    }
    {
      WallTimer t;
      scoring::QueryScorer scorer(d.graph, q, *d.ensemble, on_cfg, index);
      for (int u = 0; u < q.node_count(); ++u) {
        const auto& on_list = scorer.Candidates(u);
        r.identical &= SameCandidates(off_lists[size_t(u)], on_list);
        r.candidates += on_list.size();
      }
      r.on_ms += t.ElapsedMillis();
    }
  }
  return r;
}

double NsPerPair(double ms, size_t pairs) {
  return pairs > 0 ? ms * 1e6 / static_cast<double>(pairs) : 0.0;
}

double Speedup(double base_ms, double ms) {
  return ms > 0 ? base_ms / ms : 0.0;
}

}  // namespace
}  // namespace star::bench

int main() {
  using namespace star;
  using namespace star::bench;

  const size_t nodes = EnvSize("STAR_BENCH_NODES", 20000);
  const size_t num_queries = EnvSize("STAR_BENCH_QUERIES", 6);
  const Dataset d = MakeDataset(graph::DBpediaLike(nodes));
  const double threshold = BenchConfig(2).node_threshold;

  query::WorkloadGenerator wg(d.graph, /*seed=*/71);
  std::vector<query::QueryGraph> queries;
  for (size_t i = 0; i < num_queries; ++i) {
    queries.push_back(wg.RandomStarQuery(4, BenchWorkloadOptions()));
  }
  const auto labels = QueryLabels(queries);

  const PairBench pair = RunPairBench(d, labels, threshold);
  const BulkBench scan = RunBulkBench(d, queries, /*with_index=*/false);
  const BulkBench indexed = RunBulkBench(d, queries, /*with_index=*/true);
  const BulkBench batch = RunBulkBench(d, queries, /*with_index=*/false,
                                       /*toggle_batch=*/true);

  const bool ok = pair.exact_bitwise && pair.accepted_bitwise &&
                  scan.identical && indexed.identical && batch.identical;

  std::printf("{\n");
  std::printf("  \"bench\": \"scoring_kernel\",\n");
  PrintHostJson();
  std::printf("  \"dataset\": {\"name\": \"%s\", \"nodes\": %zu, \"edges\": %zu},\n",
              d.name.c_str(), d.graph.node_count(), d.graph.edge_count());
  std::printf("  \"workload\": {\"queries\": %zu, \"query_labels\": %zu, \"threshold\": %.2f},\n",
              num_queries, labels.size(), threshold);
  std::printf("  \"per_pair\": {\n");
  std::printf("    \"pairs\": %zu,\n", pair.pairs);
  std::printf("    \"score_ns\": %.1f,\n", NsPerPair(pair.score_ms, pair.pairs));
  std::printf("    \"kernel_exact_ns\": %.1f,\n",
              NsPerPair(pair.kernel_exact_ms, pair.pairs));
  std::printf("    \"kernel_thresholded_ns\": %.1f,\n",
              NsPerPair(pair.kernel_thresh_ms, pair.pairs));
  std::printf("    \"speedup_exact\": %.2f,\n",
              Speedup(pair.score_ms, pair.kernel_exact_ms));
  std::printf("    \"speedup_thresholded\": %.2f\n",
              Speedup(pair.score_ms, pair.kernel_thresh_ms));
  std::printf("  },\n");
  std::printf("  \"kernel_stats\": {\"pairs\": %llu, \"early_exits\": %llu, \"features_evaluated\": %llu, \"features_skipped\": %llu},\n",
              static_cast<unsigned long long>(pair.stats.pairs),
              static_cast<unsigned long long>(pair.stats.early_exits),
              static_cast<unsigned long long>(pair.stats.features_evaluated),
              static_cast<unsigned long long>(pair.stats.features_skipped));
  std::printf("  \"bulk_scan\": {\"kernel_off_ms\": %.1f, \"kernel_on_ms\": %.1f, \"speedup\": %.2f, \"candidates\": %zu},\n",
              scan.off_ms, scan.on_ms, Speedup(scan.off_ms, scan.on_ms),
              scan.candidates);
  std::printf("  \"bulk_indexed\": {\"kernel_off_ms\": %.1f, \"kernel_on_ms\": %.1f, \"speedup\": %.2f, \"candidates\": %zu},\n",
              indexed.off_ms, indexed.on_ms,
              Speedup(indexed.off_ms, indexed.on_ms), indexed.candidates);
  std::printf("  \"bulk_batch\": {\"batch_off_ms\": %.1f, \"batch_on_ms\": %.1f, \"speedup\": %.2f, \"candidates\": %zu},\n",
              batch.off_ms, batch.on_ms, Speedup(batch.off_ms, batch.on_ms),
              batch.candidates);
  std::printf("  \"identity\": {\"exact_bitwise\": %s, \"accepted_bitwise\": %s, \"bulk_scan_identical\": %s, \"bulk_indexed_identical\": %s, \"bulk_batch_identical\": %s}\n",
              pair.exact_bitwise ? "true" : "false",
              pair.accepted_bitwise ? "true" : "false",
              scan.identical ? "true" : "false",
              indexed.identical ? "true" : "false",
              batch.identical ? "true" : "false");
  std::printf("}\n");

  std::fprintf(stderr, "identity: %s\n",
               ok ? "kernel bit-identical to canonical scoring"
                  : "MISMATCH — kernel diverges from canonical scoring");
  return ok ? 0 : 1;
}
