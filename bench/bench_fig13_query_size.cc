// Exp-2 / Figure 13(c,d): average star-query runtime vs query size
// (2..6 nodes), d = 2, k = 20. Paper shape: BP and graphTA grow
// exponentially with query size; stark/stard stay flat-ish, and stard
// beats graphTA even on single-edge queries.

#include "bench_util.h"

int main() {
  using namespace star;
  using namespace star::bench;

  const size_t n = EnvSize("STAR_BENCH_NODES", 20000);
  const size_t num_queries = EnvSize("STAR_BENCH_QUERIES", 8);

  for (const auto& config : {graph::DBpediaLike(n), graph::Yago2Like(n)}) {
    const auto d = MakeDataset(config);
    const auto match = BenchConfig(/*d=*/2);

    PrintTitle("Figure 13(c,d) (" + d.name +
               "): avg runtime [ms] vs star query size, d=2, k=20");
    std::printf("%-9s %12s %12s %12s %12s\n", "nodes", "stark", "stard",
                "graphTA", "BP");
    RunOptions opts;
    opts.k = 20;
    for (int size = 2; size <= 6; ++size) {
      query::WorkloadGenerator wg(d.graph, 1000 + size);
      const auto queries = wg.StarWorkload(static_cast<int>(num_queries),
                                           size, size, BenchWorkloadOptions());
      std::printf("%-9d", size);
      for (const Engine engine :
           {Engine::kStark, Engine::kStard, Engine::kGraphTa, Engine::kBp}) {
        const auto ws = RunWorkload(engine, d, match, queries, opts);
        std::printf(" %11.1f%s", ws.per_query_ms.Mean(),
                    ws.timeouts > 0 ? "*" : " ");
        std::fflush(stdout);
      }
      std::printf("\n");
    }
    std::printf("(* = budget hits at %.0f ms/query)\n\n", opts.budget_ms);
  }
  return 0;
}
