// Exp-1 / Figure 12: average star-query runtime vs the search bound d,
// for stark / stard / graphTA / BP on (a) a DBpedia-like and (b) a
// YAGO2-like graph. k = 20. The paper's shape: stark/stard beat graphTA
// and BP by ~an order of magnitude; stard == stark at d = 1 and pulls
// ahead for d >= 2 where stark pays a d-hop traversal per pivot.

#include "bench_util.h"

int main() {
  using namespace star;
  using namespace star::bench;

  const size_t n = EnvSize("STAR_BENCH_NODES", 20000);
  const size_t num_queries = EnvSize("STAR_BENCH_QUERIES", 10);

  for (const auto& config : {graph::DBpediaLike(n), graph::Yago2Like(n)}) {
    const auto d = MakeDataset(config);
    query::WorkloadGenerator wg(d.graph, 2016);
    const auto queries = wg.StarWorkload(static_cast<int>(num_queries), 3, 5,
                                         BenchWorkloadOptions());

    PrintTitle("Figure 12 (" + d.name + "): avg runtime [ms] vs d, k=20, " +
               std::to_string(num_queries) + " star queries");
    std::printf("%-9s %12s %12s %12s %12s\n", "d", "stark", "stard",
                "graphTA", "BP");
    RunOptions opts;
    opts.k = 20;
    for (int bound = 1; bound <= 3; ++bound) {
      const auto match = BenchConfig(bound);
      std::printf("%-9d", bound);
      for (const Engine engine :
           {Engine::kStark, Engine::kStard, Engine::kGraphTa, Engine::kBp}) {
        const auto ws = RunWorkload(engine, d, match, queries, opts);
        std::printf(" %11.1f%s", ws.per_query_ms.Mean(),
                    ws.timeouts > 0 ? "*" : " ");
        std::fflush(stdout);
      }
      std::printf("\n");
    }
    std::printf("(* = some queries hit the %.0f ms per-query budget)\n\n",
                opts.budget_ms);
  }
  return 0;
}
