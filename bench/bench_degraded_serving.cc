// Graceful-degradation benchmark: measures the accuracy/latency trade of
// each shedding-ladder level against the exact oracle, and demonstrates
// that accuracy-first shedding absorbs overload that a reject-only
// service bounces. JSON on stdout (BENCH_degrade.json).
//
// Three gates make this a correctness check as much as a measurement —
// the process exits non-zero if any fails:
//   1. identity: level 0 is bitwise identical to a direct exact run;
//   2. certificates: for every query x level, the guaranteed prefix is
//      bitwise exact, measured recall@k is at least the certificate's
//      floor (guaranteed_prefix / k), and the certified score bound
//      dominates the true rank-(prefix+1) score;
//   3. shedding: under an offered load the nominal service cannot sustain,
//      the degrade-enabled service rejects strictly fewer requests with
//      kOverloaded than the reject-only one.
//
// Usage: bench_degraded_serving [--quick]
// Environment overrides:
//   STAR_BENCH_NODES       dataset size (default 10000; --quick 2000)
//   STAR_DEGRADE_QUERIES   pool size (default 32; --quick 10)

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "serve/degrade.h"
#include "serve/query_service.h"

namespace star::bench {
namespace {

constexpr double kEps = 1e-9;

struct LevelResult {
  int level = 0;
  double recall_avg = 0.0;
  double cert_floor_avg = 0.0;  // avg guaranteed_prefix / k
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  size_t identity_mismatches = 0;   // level 0 only
  size_t cert_violations = 0;
};

/// Fraction of the exact top-k score multiset the degraded answer
/// recovered. Score-based (not mapping-based) so equal-score siblings —
/// which the engine may legally order either way — count as recalled.
double RecallAtK(const std::vector<core::GraphMatch>& got,
                 const std::vector<core::GraphMatch>& exact) {
  if (exact.empty()) return 1.0;
  std::vector<double> want;
  for (const auto& m : exact) want.push_back(m.score);
  size_t hit = 0;
  for (const auto& m : got) {
    for (auto it = want.begin(); it != want.end(); ++it) {
      if (std::abs(*it - m.score) <= kEps) {
        want.erase(it);
        ++hit;
        break;
      }
    }
  }
  return static_cast<double>(hit) / static_cast<double>(exact.size());
}

bool SameMatches(const std::vector<core::GraphMatch>& a,
                 const std::vector<core::GraphMatch>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].mapping != b[i].mapping || a[i].score != b[i].score) return false;
  }
  return true;
}

LevelResult RunLevel(const Dataset& d, const core::StarOptions& nominal,
                     const serve::DegradePolicy& policy, int level,
                     const std::vector<query::QueryGraph>& pool, size_t k,
                     const std::vector<std::vector<core::GraphMatch>>& exact,
                     const std::vector<std::vector<core::GraphMatch>>& truth) {
  core::StarOptions effective = nominal;
  serve::ApplyDegradation(policy, level, &effective);

  LevelResult r;
  r.level = level;
  StatAccumulator lat;
  double recall_sum = 0.0;
  double floor_sum = 0.0;
  const WallTimer wall;
  for (size_t i = 0; i < pool.size(); ++i) {
    core::StarFramework fw(d.graph, *d.ensemble, d.index.get(), effective);
    const WallTimer t;
    const auto out = fw.TopK(pool[i], k);
    lat.Add(t.ElapsedMillis());
    const auto cert = serve::BuildCertificate(
        pool[i], nominal, effective, level, fw.last_stats(), out);

    if (level == 0 && !SameMatches(out, exact[i])) ++r.identity_mismatches;

    const double recall = RecallAtK(out, exact[i]);
    recall_sum += recall;
    const double floor =
        static_cast<double>(cert.guaranteed_prefix) /
        static_cast<double>(std::max<size_t>(1, exact[i].size()));
    floor_sum += floor;

    // Certificate soundness, graded against the oracle:
    //  - the guaranteed prefix must be bitwise the exact prefix;
    //  - the recall the certificate promises must be <= the measured one;
    //  - the bound must dominate the true rank-(prefix+1) score.
    const size_t p = cert.guaranteed_prefix;
    bool bad = p > out.size();
    for (size_t j = 0; !bad && j < p; ++j) {
      bad = j >= exact[i].size() ||
            out[j].mapping != exact[i][j].mapping ||
            out[j].score != exact[i][j].score;
    }
    if (recall + kEps < floor) bad = true;
    if (truth[i].size() > p &&
        cert.score_bound < truth[i][p].score - kEps) {
      bad = true;
    }
    if (bad) ++r.cert_violations;
  }
  const double wall_s = wall.ElapsedSeconds();
  r.recall_avg = recall_sum / pool.size();
  r.cert_floor_avg = floor_sum / pool.size();
  r.qps = pool.size() / wall_s;
  r.p50_ms = lat.Percentile(0.50);
  r.p99_ms = lat.Percentile(0.99);
  return r;
}

struct ShedResult {
  size_t ok = 0;
  size_t overloaded = 0;
  size_t other = 0;
  std::array<uint64_t, serve::kMaxDegradationLevel + 1> at_level{};
};

/// Open-loop burst: requests paced at a fixed interval the NOMINAL
/// service cannot sustain. The reject-only service must bounce the
/// excess; the shedding service absorbs it by degrading.
ShedResult RunShedPhase(const Dataset& d, const core::StarOptions& nominal,
                        const serve::DegradePolicy& policy, bool enable,
                        const std::vector<query::QueryGraph>& pool, size_t k,
                        size_t requests, double interval_ms) {
  serve::ServiceOptions so;
  so.star = nominal;
  so.max_inflight = 2;
  // 10 slots so every ladder rung is reachable: with the default
  // fractions, level 3 engages at admission depth 9 — one slot before
  // the queue is full and kOverloaded becomes the only option left.
  so.max_queue = 10;
  so.cache_capacity = 0;  // every admission is a real execution
  so.enable_coalescing = false;
  so.degrade = policy;
  so.degrade.enable = enable;
  serve::QueryService service(d.graph, *d.ensemble, d.index.get(), so);

  std::vector<std::future<serve::QueryResponse>> futs;
  futs.reserve(requests);
  for (size_t i = 0; i < requests; ++i) {
    serve::QueryRequest req;
    req.query = pool[i % pool.size()];
    req.k = k;
    req.use_cache = false;
    futs.push_back(service.Submit(std::move(req)));
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(interval_ms));
  }

  ShedResult r;
  for (auto& f : futs) {
    const serve::QueryResponse resp = f.get();
    if (resp.status.ok()) {
      ++r.ok;
    } else if (resp.status.code() == StatusCode::kOverloaded) {
      ++r.overloaded;
    } else {
      ++r.other;
    }
  }
  r.at_level = service.stats().degraded_at_level;
  return r;
}

}  // namespace
}  // namespace star::bench

int main(int argc, char** argv) {
  using namespace star;
  using namespace star::bench;

  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const size_t nodes = EnvSize("STAR_BENCH_NODES", quick ? 2000 : 10000);
  const size_t pool_size =
      EnvSize("STAR_DEGRADE_QUERIES", quick ? 10 : 32);
  const size_t k = 10;
  const Dataset d = MakeDataset(graph::DBpediaLike(nodes));

  core::StarOptions nominal;
  nominal.match = BenchConfig(2);

  serve::DegradePolicy policy;
  policy.enable = true;
  policy.l1_max_candidates = 32;
  policy.l2_sample_rate = 0.5;

  query::WorkloadGenerator wg(d.graph, /*seed=*/83);
  std::vector<query::QueryGraph> pool;
  std::vector<std::vector<core::GraphMatch>> exact;   // top-k oracle
  std::vector<std::vector<core::GraphMatch>> truth;   // top-(k+1): bound truth
  for (size_t i = 0; i < pool_size; ++i) {
    pool.push_back(wg.RandomStarQuery(3, BenchWorkloadOptions()));
    core::StarFramework fw(d.graph, *d.ensemble, d.index.get(), nominal);
    exact.push_back(fw.TopK(pool.back(), k));
    core::StarFramework fw_next(d.graph, *d.ensemble, d.index.get(), nominal);
    truth.push_back(fw_next.TopK(pool.back(), k + 1));
  }

  std::vector<LevelResult> levels;
  for (int level = 0; level <= serve::kMaxDegradationLevel; ++level) {
    levels.push_back(
        RunLevel(d, nominal, policy, level, pool, k, exact, truth));
    const LevelResult& r = levels.back();
    std::fprintf(stderr,
                 "[degrade] level=%d recall=%.3f floor=%.3f qps=%.1f "
                 "p50=%.2fms p99=%.2fms (mismatches=%zu violations=%zu)\n",
                 r.level, r.recall_avg, r.cert_floor_avg, r.qps, r.p50_ms,
                 r.p99_ms, r.identity_mismatches, r.cert_violations);
  }

  // Shedding phase: offer load at twice the nominal service's capacity
  // (2 workers draining p50-latency queries). The deepest level must be
  // far cheaper than nominal for shedding to absorb this — that ratio is
  // exactly what the ladder exists to provide.
  const double interval_ms = levels[0].p50_ms / 2.0 / 2.0;
  const size_t burst = quick ? 60 : 160;
  const ShedResult reject_only =
      RunShedPhase(d, nominal, policy, false, pool, k, burst, interval_ms);
  const ShedResult shed =
      RunShedPhase(d, nominal, policy, true, pool, k, burst, interval_ms);
  std::fprintf(stderr,
               "[shed] reject-only: ok=%zu overloaded=%zu | shedding: ok=%zu "
               "overloaded=%zu levels=[%llu %llu %llu %llu]\n",
               reject_only.ok, reject_only.overloaded, shed.ok,
               shed.overloaded,
               static_cast<unsigned long long>(shed.at_level[0]),
               static_cast<unsigned long long>(shed.at_level[1]),
               static_cast<unsigned long long>(shed.at_level[2]),
               static_cast<unsigned long long>(shed.at_level[3]));

  size_t mismatches = 0, violations = 0;
  for (const LevelResult& r : levels) {
    mismatches += r.identity_mismatches;
    violations += r.cert_violations;
  }
  const bool saturated = reject_only.overloaded > 0;
  const bool shed_wins = saturated && shed.overloaded < reject_only.overloaded;
  const bool ok = mismatches == 0 && violations == 0 && shed_wins &&
                  reject_only.other == 0 && shed.other == 0;

  std::printf("{\n");
  std::printf("  \"bench\": \"degraded_serving\",\n");
  PrintHostJson();
  std::printf("  \"dataset\": {\"name\": \"%s\", \"nodes\": %zu, \"edges\": %zu},\n",
              d.name.c_str(), d.graph.node_count(), d.graph.edge_count());
  std::printf("  \"workload\": {\"queries\": %zu, \"k\": %zu, "
              "\"l1_max_candidates\": %zu, \"l2_sample_rate\": %.2f},\n",
              pool_size, k, policy.l1_max_candidates, policy.l2_sample_rate);
  std::printf("  \"levels\": [\n");
  for (size_t i = 0; i < levels.size(); ++i) {
    const LevelResult& r = levels[i];
    std::printf(
        "    {\"level\": %d, \"recall_at_k\": %.4f, \"cert_floor\": %.4f, "
        "\"qps\": %.1f, \"p50_ms\": %.3f, \"p99_ms\": %.3f}%s\n",
        r.level, r.recall_avg, r.cert_floor_avg, r.qps, r.p50_ms, r.p99_ms,
        i + 1 < levels.size() ? "," : "");
  }
  std::printf("  ],\n");
  std::printf("  \"shedding\": {\"requests\": %zu, \"interval_ms\": %.3f, "
              "\"reject_only_overloaded\": %zu, \"shed_overloaded\": %zu, "
              "\"shed_ok\": %zu, \"degraded_at_level\": [%llu, %llu, %llu, %llu]},\n",
              burst, interval_ms, reject_only.overloaded, shed.overloaded,
              shed.ok,
              static_cast<unsigned long long>(shed.at_level[0]),
              static_cast<unsigned long long>(shed.at_level[1]),
              static_cast<unsigned long long>(shed.at_level[2]),
              static_cast<unsigned long long>(shed.at_level[3]));
  std::printf("  \"gates\": {\"level0_identity\": %s, \"certificates_sound\": %s, "
              "\"shedding_beats_reject_only\": %s}\n",
              mismatches == 0 ? "true" : "false",
              violations == 0 ? "true" : "false",
              shed_wins ? "true" : "false");
  std::printf("}\n");

  std::fprintf(stderr, "gates: %s\n",
               ok ? "all passed"
                  : "FAILED — see identity/certificate/shedding counters");
  return ok ? 0 : 1;
}
