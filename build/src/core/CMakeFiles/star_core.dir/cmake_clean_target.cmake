file(REMOVE_RECURSE
  "libstar_core.a"
)
