# Empty compiler generated dependencies file for star_core.
# This may be replaced when dependencies are built.
