
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/decomposition.cc" "src/core/CMakeFiles/star_core.dir/decomposition.cc.o" "gcc" "src/core/CMakeFiles/star_core.dir/decomposition.cc.o.d"
  "/root/repo/src/core/explain.cc" "src/core/CMakeFiles/star_core.dir/explain.cc.o" "gcc" "src/core/CMakeFiles/star_core.dir/explain.cc.o.d"
  "/root/repo/src/core/framework.cc" "src/core/CMakeFiles/star_core.dir/framework.cc.o" "gcc" "src/core/CMakeFiles/star_core.dir/framework.cc.o.d"
  "/root/repo/src/core/pivot_enumerator.cc" "src/core/CMakeFiles/star_core.dir/pivot_enumerator.cc.o" "gcc" "src/core/CMakeFiles/star_core.dir/pivot_enumerator.cc.o.d"
  "/root/repo/src/core/rank_join.cc" "src/core/CMakeFiles/star_core.dir/rank_join.cc.o" "gcc" "src/core/CMakeFiles/star_core.dir/rank_join.cc.o.d"
  "/root/repo/src/core/star_search.cc" "src/core/CMakeFiles/star_core.dir/star_search.cc.o" "gcc" "src/core/CMakeFiles/star_core.dir/star_search.cc.o.d"
  "/root/repo/src/core/topk_utils.cc" "src/core/CMakeFiles/star_core.dir/topk_utils.cc.o" "gcc" "src/core/CMakeFiles/star_core.dir/topk_utils.cc.o.d"
  "/root/repo/src/core/tuning.cc" "src/core/CMakeFiles/star_core.dir/tuning.cc.o" "gcc" "src/core/CMakeFiles/star_core.dir/tuning.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/star_common.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/star_text.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/star_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/star_query.dir/DependInfo.cmake"
  "/root/repo/build/src/scoring/CMakeFiles/star_scoring.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
