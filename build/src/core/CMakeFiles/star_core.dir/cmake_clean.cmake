file(REMOVE_RECURSE
  "CMakeFiles/star_core.dir/decomposition.cc.o"
  "CMakeFiles/star_core.dir/decomposition.cc.o.d"
  "CMakeFiles/star_core.dir/explain.cc.o"
  "CMakeFiles/star_core.dir/explain.cc.o.d"
  "CMakeFiles/star_core.dir/framework.cc.o"
  "CMakeFiles/star_core.dir/framework.cc.o.d"
  "CMakeFiles/star_core.dir/pivot_enumerator.cc.o"
  "CMakeFiles/star_core.dir/pivot_enumerator.cc.o.d"
  "CMakeFiles/star_core.dir/rank_join.cc.o"
  "CMakeFiles/star_core.dir/rank_join.cc.o.d"
  "CMakeFiles/star_core.dir/star_search.cc.o"
  "CMakeFiles/star_core.dir/star_search.cc.o.d"
  "CMakeFiles/star_core.dir/topk_utils.cc.o"
  "CMakeFiles/star_core.dir/topk_utils.cc.o.d"
  "CMakeFiles/star_core.dir/tuning.cc.o"
  "CMakeFiles/star_core.dir/tuning.cc.o.d"
  "libstar_core.a"
  "libstar_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/star_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
