# Empty compiler generated dependencies file for star_common.
# This may be replaced when dependencies are built.
