file(REMOVE_RECURSE
  "libstar_common.a"
)
