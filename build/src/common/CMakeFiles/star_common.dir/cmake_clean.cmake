file(REMOVE_RECURSE
  "CMakeFiles/star_common.dir/string_util.cc.o"
  "CMakeFiles/star_common.dir/string_util.cc.o.d"
  "libstar_common.a"
  "libstar_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/star_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
