file(REMOVE_RECURSE
  "libstar_graph.a"
)
