file(REMOVE_RECURSE
  "CMakeFiles/star_graph.dir/graph_generator.cc.o"
  "CMakeFiles/star_graph.dir/graph_generator.cc.o.d"
  "CMakeFiles/star_graph.dir/graph_io.cc.o"
  "CMakeFiles/star_graph.dir/graph_io.cc.o.d"
  "CMakeFiles/star_graph.dir/graph_stats.cc.o"
  "CMakeFiles/star_graph.dir/graph_stats.cc.o.d"
  "CMakeFiles/star_graph.dir/knowledge_graph.cc.o"
  "CMakeFiles/star_graph.dir/knowledge_graph.cc.o.d"
  "CMakeFiles/star_graph.dir/label_index.cc.o"
  "CMakeFiles/star_graph.dir/label_index.cc.o.d"
  "libstar_graph.a"
  "libstar_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/star_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
