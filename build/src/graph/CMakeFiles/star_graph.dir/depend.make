# Empty dependencies file for star_graph.
# This may be replaced when dependencies are built.
