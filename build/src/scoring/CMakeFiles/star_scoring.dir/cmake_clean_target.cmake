file(REMOVE_RECURSE
  "libstar_scoring.a"
)
