file(REMOVE_RECURSE
  "CMakeFiles/star_scoring.dir/query_scorer.cc.o"
  "CMakeFiles/star_scoring.dir/query_scorer.cc.o.d"
  "libstar_scoring.a"
  "libstar_scoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/star_scoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
