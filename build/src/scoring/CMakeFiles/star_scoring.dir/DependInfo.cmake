
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scoring/query_scorer.cc" "src/scoring/CMakeFiles/star_scoring.dir/query_scorer.cc.o" "gcc" "src/scoring/CMakeFiles/star_scoring.dir/query_scorer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/star_common.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/star_text.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/star_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/star_query.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
