# Empty compiler generated dependencies file for star_scoring.
# This may be replaced when dependencies are built.
