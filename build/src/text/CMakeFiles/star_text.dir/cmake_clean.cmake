file(REMOVE_RECURSE
  "CMakeFiles/star_text.dir/ensemble.cc.o"
  "CMakeFiles/star_text.dir/ensemble.cc.o.d"
  "CMakeFiles/star_text.dir/phonetic.cc.o"
  "CMakeFiles/star_text.dir/phonetic.cc.o.d"
  "CMakeFiles/star_text.dir/similarity.cc.o"
  "CMakeFiles/star_text.dir/similarity.cc.o.d"
  "CMakeFiles/star_text.dir/synonym_dictionary.cc.o"
  "CMakeFiles/star_text.dir/synonym_dictionary.cc.o.d"
  "CMakeFiles/star_text.dir/tfidf.cc.o"
  "CMakeFiles/star_text.dir/tfidf.cc.o.d"
  "CMakeFiles/star_text.dir/type_ontology.cc.o"
  "CMakeFiles/star_text.dir/type_ontology.cc.o.d"
  "CMakeFiles/star_text.dir/weight_learning.cc.o"
  "CMakeFiles/star_text.dir/weight_learning.cc.o.d"
  "libstar_text.a"
  "libstar_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/star_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
