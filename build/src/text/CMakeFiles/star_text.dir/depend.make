# Empty dependencies file for star_text.
# This may be replaced when dependencies are built.
