
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/text/ensemble.cc" "src/text/CMakeFiles/star_text.dir/ensemble.cc.o" "gcc" "src/text/CMakeFiles/star_text.dir/ensemble.cc.o.d"
  "/root/repo/src/text/phonetic.cc" "src/text/CMakeFiles/star_text.dir/phonetic.cc.o" "gcc" "src/text/CMakeFiles/star_text.dir/phonetic.cc.o.d"
  "/root/repo/src/text/similarity.cc" "src/text/CMakeFiles/star_text.dir/similarity.cc.o" "gcc" "src/text/CMakeFiles/star_text.dir/similarity.cc.o.d"
  "/root/repo/src/text/synonym_dictionary.cc" "src/text/CMakeFiles/star_text.dir/synonym_dictionary.cc.o" "gcc" "src/text/CMakeFiles/star_text.dir/synonym_dictionary.cc.o.d"
  "/root/repo/src/text/tfidf.cc" "src/text/CMakeFiles/star_text.dir/tfidf.cc.o" "gcc" "src/text/CMakeFiles/star_text.dir/tfidf.cc.o.d"
  "/root/repo/src/text/type_ontology.cc" "src/text/CMakeFiles/star_text.dir/type_ontology.cc.o" "gcc" "src/text/CMakeFiles/star_text.dir/type_ontology.cc.o.d"
  "/root/repo/src/text/weight_learning.cc" "src/text/CMakeFiles/star_text.dir/weight_learning.cc.o" "gcc" "src/text/CMakeFiles/star_text.dir/weight_learning.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/star_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
