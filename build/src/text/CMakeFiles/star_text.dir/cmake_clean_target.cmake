file(REMOVE_RECURSE
  "libstar_text.a"
)
