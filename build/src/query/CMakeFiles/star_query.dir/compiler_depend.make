# Empty compiler generated dependencies file for star_query.
# This may be replaced when dependencies are built.
