
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/query_graph.cc" "src/query/CMakeFiles/star_query.dir/query_graph.cc.o" "gcc" "src/query/CMakeFiles/star_query.dir/query_graph.cc.o.d"
  "/root/repo/src/query/query_parser.cc" "src/query/CMakeFiles/star_query.dir/query_parser.cc.o" "gcc" "src/query/CMakeFiles/star_query.dir/query_parser.cc.o.d"
  "/root/repo/src/query/query_template.cc" "src/query/CMakeFiles/star_query.dir/query_template.cc.o" "gcc" "src/query/CMakeFiles/star_query.dir/query_template.cc.o.d"
  "/root/repo/src/query/workload.cc" "src/query/CMakeFiles/star_query.dir/workload.cc.o" "gcc" "src/query/CMakeFiles/star_query.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/star_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/star_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/star_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
