file(REMOVE_RECURSE
  "CMakeFiles/star_query.dir/query_graph.cc.o"
  "CMakeFiles/star_query.dir/query_graph.cc.o.d"
  "CMakeFiles/star_query.dir/query_parser.cc.o"
  "CMakeFiles/star_query.dir/query_parser.cc.o.d"
  "CMakeFiles/star_query.dir/query_template.cc.o"
  "CMakeFiles/star_query.dir/query_template.cc.o.d"
  "CMakeFiles/star_query.dir/workload.cc.o"
  "CMakeFiles/star_query.dir/workload.cc.o.d"
  "libstar_query.a"
  "libstar_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/star_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
