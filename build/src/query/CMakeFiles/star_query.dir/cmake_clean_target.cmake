file(REMOVE_RECURSE
  "libstar_query.a"
)
