# Empty compiler generated dependencies file for star_baseline.
# This may be replaced when dependencies are built.
