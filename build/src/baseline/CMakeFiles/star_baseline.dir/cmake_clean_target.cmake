file(REMOVE_RECURSE
  "libstar_baseline.a"
)
