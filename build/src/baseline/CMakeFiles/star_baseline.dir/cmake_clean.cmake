file(REMOVE_RECURSE
  "CMakeFiles/star_baseline.dir/belief_propagation.cc.o"
  "CMakeFiles/star_baseline.dir/belief_propagation.cc.o.d"
  "CMakeFiles/star_baseline.dir/brute_force.cc.o"
  "CMakeFiles/star_baseline.dir/brute_force.cc.o.d"
  "CMakeFiles/star_baseline.dir/graph_ta.cc.o"
  "CMakeFiles/star_baseline.dir/graph_ta.cc.o.d"
  "libstar_baseline.a"
  "libstar_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/star_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
