# Empty compiler generated dependencies file for star_vertex.
# This may be replaced when dependencies are built.
