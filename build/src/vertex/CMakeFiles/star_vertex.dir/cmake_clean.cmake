file(REMOVE_RECURSE
  "CMakeFiles/star_vertex.dir/star_programs.cc.o"
  "CMakeFiles/star_vertex.dir/star_programs.cc.o.d"
  "libstar_vertex.a"
  "libstar_vertex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/star_vertex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
