file(REMOVE_RECURSE
  "libstar_vertex.a"
)
