
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig14_alpha.cc" "bench/CMakeFiles/bench_fig14_alpha.dir/bench_fig14_alpha.cc.o" "gcc" "bench/CMakeFiles/bench_fig14_alpha.dir/bench_fig14_alpha.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/star_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/star_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/scoring/CMakeFiles/star_scoring.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/star_query.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/star_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/star_text.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/star_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
