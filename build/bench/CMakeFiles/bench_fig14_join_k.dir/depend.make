# Empty dependencies file for bench_fig14_join_k.
# This may be replaced when dependencies are built.
