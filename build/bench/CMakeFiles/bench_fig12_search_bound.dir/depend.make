# Empty dependencies file for bench_fig12_search_bound.
# This may be replaced when dependencies are built.
