# Empty compiler generated dependencies file for kg_explorer.
# This may be replaced when dependencies are built.
