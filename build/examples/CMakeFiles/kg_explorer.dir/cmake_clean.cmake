file(REMOVE_RECURSE
  "CMakeFiles/kg_explorer.dir/kg_explorer.cpp.o"
  "CMakeFiles/kg_explorer.dir/kg_explorer.cpp.o.d"
  "kg_explorer"
  "kg_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kg_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
