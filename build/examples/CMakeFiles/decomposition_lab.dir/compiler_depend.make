# Empty compiler generated dependencies file for decomposition_lab.
# This may be replaced when dependencies are built.
