file(REMOVE_RECURSE
  "CMakeFiles/decomposition_lab.dir/decomposition_lab.cpp.o"
  "CMakeFiles/decomposition_lab.dir/decomposition_lab.cpp.o.d"
  "decomposition_lab"
  "decomposition_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decomposition_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
