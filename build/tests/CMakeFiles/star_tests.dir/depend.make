# Empty dependencies file for star_tests.
# This may be replaced when dependencies are built.
