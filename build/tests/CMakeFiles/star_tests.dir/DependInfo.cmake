
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_belief_propagation.cc" "tests/CMakeFiles/star_tests.dir/test_belief_propagation.cc.o" "gcc" "tests/CMakeFiles/star_tests.dir/test_belief_propagation.cc.o.d"
  "/root/repo/tests/test_decomposition.cc" "tests/CMakeFiles/star_tests.dir/test_decomposition.cc.o" "gcc" "tests/CMakeFiles/star_tests.dir/test_decomposition.cc.o.d"
  "/root/repo/tests/test_ensemble.cc" "tests/CMakeFiles/star_tests.dir/test_ensemble.cc.o" "gcc" "tests/CMakeFiles/star_tests.dir/test_ensemble.cc.o.d"
  "/root/repo/tests/test_explain.cc" "tests/CMakeFiles/star_tests.dir/test_explain.cc.o" "gcc" "tests/CMakeFiles/star_tests.dir/test_explain.cc.o.d"
  "/root/repo/tests/test_framework.cc" "tests/CMakeFiles/star_tests.dir/test_framework.cc.o" "gcc" "tests/CMakeFiles/star_tests.dir/test_framework.cc.o.d"
  "/root/repo/tests/test_graph_generator.cc" "tests/CMakeFiles/star_tests.dir/test_graph_generator.cc.o" "gcc" "tests/CMakeFiles/star_tests.dir/test_graph_generator.cc.o.d"
  "/root/repo/tests/test_graph_io.cc" "tests/CMakeFiles/star_tests.dir/test_graph_io.cc.o" "gcc" "tests/CMakeFiles/star_tests.dir/test_graph_io.cc.o.d"
  "/root/repo/tests/test_graph_stats.cc" "tests/CMakeFiles/star_tests.dir/test_graph_stats.cc.o" "gcc" "tests/CMakeFiles/star_tests.dir/test_graph_stats.cc.o.d"
  "/root/repo/tests/test_graph_ta.cc" "tests/CMakeFiles/star_tests.dir/test_graph_ta.cc.o" "gcc" "tests/CMakeFiles/star_tests.dir/test_graph_ta.cc.o.d"
  "/root/repo/tests/test_knowledge_graph.cc" "tests/CMakeFiles/star_tests.dir/test_knowledge_graph.cc.o" "gcc" "tests/CMakeFiles/star_tests.dir/test_knowledge_graph.cc.o.d"
  "/root/repo/tests/test_label_index.cc" "tests/CMakeFiles/star_tests.dir/test_label_index.cc.o" "gcc" "tests/CMakeFiles/star_tests.dir/test_label_index.cc.o.d"
  "/root/repo/tests/test_match_semantics.cc" "tests/CMakeFiles/star_tests.dir/test_match_semantics.cc.o" "gcc" "tests/CMakeFiles/star_tests.dir/test_match_semantics.cc.o.d"
  "/root/repo/tests/test_ontology.cc" "tests/CMakeFiles/star_tests.dir/test_ontology.cc.o" "gcc" "tests/CMakeFiles/star_tests.dir/test_ontology.cc.o.d"
  "/root/repo/tests/test_phonetic.cc" "tests/CMakeFiles/star_tests.dir/test_phonetic.cc.o" "gcc" "tests/CMakeFiles/star_tests.dir/test_phonetic.cc.o.d"
  "/root/repo/tests/test_pivot_enumerator.cc" "tests/CMakeFiles/star_tests.dir/test_pivot_enumerator.cc.o" "gcc" "tests/CMakeFiles/star_tests.dir/test_pivot_enumerator.cc.o.d"
  "/root/repo/tests/test_query_graph.cc" "tests/CMakeFiles/star_tests.dir/test_query_graph.cc.o" "gcc" "tests/CMakeFiles/star_tests.dir/test_query_graph.cc.o.d"
  "/root/repo/tests/test_query_parser.cc" "tests/CMakeFiles/star_tests.dir/test_query_parser.cc.o" "gcc" "tests/CMakeFiles/star_tests.dir/test_query_parser.cc.o.d"
  "/root/repo/tests/test_query_scorer.cc" "tests/CMakeFiles/star_tests.dir/test_query_scorer.cc.o" "gcc" "tests/CMakeFiles/star_tests.dir/test_query_scorer.cc.o.d"
  "/root/repo/tests/test_query_template.cc" "tests/CMakeFiles/star_tests.dir/test_query_template.cc.o" "gcc" "tests/CMakeFiles/star_tests.dir/test_query_template.cc.o.d"
  "/root/repo/tests/test_random.cc" "tests/CMakeFiles/star_tests.dir/test_random.cc.o" "gcc" "tests/CMakeFiles/star_tests.dir/test_random.cc.o.d"
  "/root/repo/tests/test_rank_join.cc" "tests/CMakeFiles/star_tests.dir/test_rank_join.cc.o" "gcc" "tests/CMakeFiles/star_tests.dir/test_rank_join.cc.o.d"
  "/root/repo/tests/test_similarity.cc" "tests/CMakeFiles/star_tests.dir/test_similarity.cc.o" "gcc" "tests/CMakeFiles/star_tests.dir/test_similarity.cc.o.d"
  "/root/repo/tests/test_star_search.cc" "tests/CMakeFiles/star_tests.dir/test_star_search.cc.o" "gcc" "tests/CMakeFiles/star_tests.dir/test_star_search.cc.o.d"
  "/root/repo/tests/test_status.cc" "tests/CMakeFiles/star_tests.dir/test_status.cc.o" "gcc" "tests/CMakeFiles/star_tests.dir/test_status.cc.o.d"
  "/root/repo/tests/test_string_util.cc" "tests/CMakeFiles/star_tests.dir/test_string_util.cc.o" "gcc" "tests/CMakeFiles/star_tests.dir/test_string_util.cc.o.d"
  "/root/repo/tests/test_synonym.cc" "tests/CMakeFiles/star_tests.dir/test_synonym.cc.o" "gcc" "tests/CMakeFiles/star_tests.dir/test_synonym.cc.o.d"
  "/root/repo/tests/test_tfidf.cc" "tests/CMakeFiles/star_tests.dir/test_tfidf.cc.o" "gcc" "tests/CMakeFiles/star_tests.dir/test_tfidf.cc.o.d"
  "/root/repo/tests/test_topk_utils.cc" "tests/CMakeFiles/star_tests.dir/test_topk_utils.cc.o" "gcc" "tests/CMakeFiles/star_tests.dir/test_topk_utils.cc.o.d"
  "/root/repo/tests/test_tuning.cc" "tests/CMakeFiles/star_tests.dir/test_tuning.cc.o" "gcc" "tests/CMakeFiles/star_tests.dir/test_tuning.cc.o.d"
  "/root/repo/tests/test_vertex_engine.cc" "tests/CMakeFiles/star_tests.dir/test_vertex_engine.cc.o" "gcc" "tests/CMakeFiles/star_tests.dir/test_vertex_engine.cc.o.d"
  "/root/repo/tests/test_weight_learning.cc" "tests/CMakeFiles/star_tests.dir/test_weight_learning.cc.o" "gcc" "tests/CMakeFiles/star_tests.dir/test_weight_learning.cc.o.d"
  "/root/repo/tests/test_workload.cc" "tests/CMakeFiles/star_tests.dir/test_workload.cc.o" "gcc" "tests/CMakeFiles/star_tests.dir/test_workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/star_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/star_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/vertex/CMakeFiles/star_vertex.dir/DependInfo.cmake"
  "/root/repo/build/src/scoring/CMakeFiles/star_scoring.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/star_query.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/star_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/star_text.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/star_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
