// decomposition_lab: how STAR decomposes general graph queries into stars,
// what the α-scheme does to the rank join, and how the §VI-C tuner picks
// (α, λ) from a sample workload.
//
//   $ ./decomposition_lab

#include <cstdio>
#include <vector>

#include "common/timer.h"
#include "core/decomposition.h"
#include "core/framework.h"
#include "core/tuning.h"
#include "graph/graph_generator.h"
#include "graph/label_index.h"
#include "query/workload.h"
#include "text/ensemble.h"

using namespace star;

namespace {

const char* StrategyName(core::DecompositionStrategy s) {
  switch (s) {
    case core::DecompositionStrategy::kRand: return "Rand";
    case core::DecompositionStrategy::kMaxDeg: return "MaxDeg";
    case core::DecompositionStrategy::kSimSize: return "SimSize";
    case core::DecompositionStrategy::kSimTop: return "SimTop";
    case core::DecompositionStrategy::kSimDec: return "SimDec";
  }
  return "?";
}

}  // namespace

int main() {
  const auto g = graph::GenerateGraph(graph::DBpediaLike(8000));
  const graph::LabelIndex index(g);
  text::SimilarityEnsemble ensemble;

  scoring::MatchConfig match;
  match.d = 1;
  match.node_threshold = 0.45;

  query::WorkloadGenerator wg(g, 11);
  query::WorkloadOptions wo;
  wo.variable_fraction = 0.0;
  const auto q = wg.RandomGraphQuery(5, 6, wo);
  std::printf("query: %s\n\n", q.ToString().c_str());

  // --- Part 1: what each strategy produces ------------------------------
  scoring::QueryScorer scorer(g, q, ensemble, match, &index);
  for (const auto strategy :
       {core::DecompositionStrategy::kRand, core::DecompositionStrategy::kMaxDeg,
        core::DecompositionStrategy::kSimSize,
        core::DecompositionStrategy::kSimTop,
        core::DecompositionStrategy::kSimDec}) {
    core::DecompositionOptions opts;
    opts.strategy = strategy;
    const auto stars = core::DecomposeQuery(q, opts, &scorer);
    std::printf("%-8s -> %zu stars:", StrategyName(strategy), stars.size());
    for (const auto& s : stars) {
      std::printf(" {pivot %d, %zu edges}", s.pivot, s.edges.size());
    }
    std::printf("  valid=%s\n",
                core::IsValidDecomposition(q, stars) ? "yes" : "NO");
  }

  // --- Part 2: α sweep — total search depth D per strategy --------------
  std::printf("\nalpha sweep (total depth D, k=20):\n        ");
  const std::vector<double> alphas = {0.1, 0.3, 0.5, 0.7, 0.9};
  for (const double a : alphas) std::printf("  a=%.1f", a);
  std::printf("\n");
  for (const auto strategy :
       {core::DecompositionStrategy::kMaxDeg,
        core::DecompositionStrategy::kSimSize,
        core::DecompositionStrategy::kSimDec}) {
    std::printf("%-8s", StrategyName(strategy));
    for (const double alpha : alphas) {
      core::StarOptions o;
      o.match = match;
      o.alpha = alpha;
      o.decomposition.strategy = strategy;
      core::StarFramework fw(g, ensemble, &index, o);
      fw.TopK(q, 20);
      std::printf("  %5zu", fw.last_stats().total_depth);
    }
    std::printf("\n");
  }

  // --- Part 3: the §VI-C tuner ------------------------------------------
  core::StarOptions o;
  o.match = match;
  o.decomposition.strategy = core::DecompositionStrategy::kSimDec;
  core::StarFramework fw(g, ensemble, &index, o);
  const auto workload = wg.GraphWorkload(5, 4, 5, wo);
  core::TuningOptions topts;
  topts.k = 20;
  WallTimer timer;
  const auto result = core::TuneParameters(fw, workload, topts);
  std::printf(
      "\ntuned in %.1f ms: alpha=%.1f lambda=%.1f (total depth %zu over %zu "
      "queries)\n",
      timer.ElapsedMillis(), result.alpha, result.lambda_tradeoff,
      result.total_depth, workload.size());
  return 0;
}
