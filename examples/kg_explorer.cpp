// kg_explorer: a small command-line tool over the library —
// generate / save / load knowledge graphs and run ad-hoc star queries.
//
//   $ ./kg_explorer generate out.kg [nodes]         # synthesize and save
//   $ ./kg_explorer stats graph.kg                  # print dataset stats
//   $ ./kg_explorer query graph.kg "Keyword" ...    # pivot + leaf keywords
//   $ ./kg_explorer match graph.kg "(Brad) -- (?m/Film); (?m) -[won]- (Award)"
//
// `query` mirrors the paper's star templates: the first keyword is the
// pivot, each following keyword becomes a leaf connected by a wildcard
// edge, matched within d = 2 hops. `match` accepts the full query
// language of query/query_parser.h (general graph shapes).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/framework.h"
#include "graph/graph_generator.h"
#include "graph/graph_io.h"
#include "graph/label_index.h"
#include "query/query_graph.h"
#include "query/query_parser.h"
#include "text/ensemble.h"

using namespace star;

namespace {

int Generate(const char* path, size_t nodes) {
  const auto g = graph::GenerateGraph(graph::DBpediaLike(nodes));
  const auto status = graph::SaveGraphToFile(g, path);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %zu nodes, %zu edges\n", path, g.node_count(),
              g.edge_count());
  return 0;
}

int Stats(const char* path) {
  auto loaded = graph::LoadGraphFromFile(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  const auto& g = *loaded;
  size_t degree_sum = 0;
  for (graph::NodeId v = 0; v < g.node_count(); ++v) degree_sum += g.Degree(v);
  std::printf("graph        %s\n", path);
  std::printf("nodes        %zu\n", g.node_count());
  std::printf("edges        %zu\n", g.edge_count());
  std::printf("node types   %zu\n", g.type_count());
  std::printf("relations    %zu\n", g.relation_count());
  std::printf("avg degree   %.2f\n",
              g.node_count() ? static_cast<double>(degree_sum) / g.node_count()
                             : 0.0);
  std::printf("max degree   %zu\n", g.MaxDegree());
  return 0;
}

int RunQuery(const graph::KnowledgeGraph& g, const query::QueryGraph& q) {
  const graph::LabelIndex index(g);
  const auto synonyms = text::SynonymDictionary::BuiltIn();
  text::SimilarityEnsemble::Context ctx;
  ctx.synonyms = &synonyms;
  const text::SimilarityEnsemble ensemble(ctx);

  core::StarOptions options;
  options.match.d = 2;
  options.match.node_threshold = 0.4;
  options.match.max_candidates = 5000;
  core::StarFramework framework(g, ensemble, &index, options);

  std::printf("query: %s\n", q.ToString().c_str());
  const auto matches = framework.TopK(q, 10);
  if (matches.empty()) {
    std::printf("no matches\n");
    return 0;
  }
  for (size_t r = 0; r < matches.size(); ++r) {
    std::printf("#%-2zu score=%.3f ", r + 1, matches[r].score);
    for (int u = 0; u < q.node_count(); ++u) {
      const auto v = matches[r].mapping[u];
      std::printf(" [%s -> %s/%s]", q.node(u).label.c_str(),
                  std::string(g.NodeLabel(v)).c_str(),
                  std::string(g.TypeName(g.NodeType(v))).c_str());
    }
    std::printf("\n");
  }
  return 0;
}

int Query(const char* path, int argc, char** argv) {
  auto loaded = graph::LoadGraphFromFile(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  query::QueryGraph q;
  const int pivot = q.AddNode(argv[0]);
  for (int i = 1; i < argc; ++i) q.AddEdge(pivot, q.AddNode(argv[i]));
  return RunQuery(*loaded, q);
}

int Match(const char* path, const char* query_text) {
  auto loaded = graph::LoadGraphFromFile(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  auto parsed = query::ParseQuery(query_text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "query error: %s\n",
                 parsed.status().ToString().c_str());
    return 1;
  }
  return RunQuery(*loaded, *parsed);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 3 && std::strcmp(argv[1], "generate") == 0) {
    const size_t nodes = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 10000;
    return Generate(argv[2], nodes);
  }
  if (argc == 3 && std::strcmp(argv[1], "stats") == 0) {
    return Stats(argv[2]);
  }
  if (argc >= 4 && std::strcmp(argv[1], "query") == 0) {
    return Query(argv[2], argc - 3, argv + 3);
  }
  if (argc == 4 && std::strcmp(argv[1], "match") == 0) {
    return Match(argv[2], argv[3]);
  }
  std::fprintf(stderr,
               "usage:\n"
               "  kg_explorer generate <out.kg> [nodes]\n"
               "  kg_explorer stats <graph.kg>\n"
               "  kg_explorer query <graph.kg> <pivot> <leaf> [leaf...]\n"
               "  kg_explorer match <graph.kg> \"<query language text>\"\n");
  return 2;
}
