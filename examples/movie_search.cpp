// movie_search: top-k search on a larger synthetic knowledge graph, with
// learned ensemble weights and a comparison of all four engines on the
// same queries (stark / stard / graphTA / BP).
//
//   $ ./movie_search [num_nodes]     (default 8000)

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "baseline/belief_propagation.h"
#include "baseline/graph_ta.h"
#include "common/timer.h"
#include "core/framework.h"
#include "core/star_search.h"
#include "graph/graph_generator.h"
#include "graph/label_index.h"
#include "query/workload.h"
#include "text/weight_learning.h"

using namespace star;  // example code; the library itself never does this

namespace {

// Trains Eq. 1 weights on perturbation pairs drawn from the graph's own
// labels — the offline learning step of [2] that the paper assumes.
void TrainWeights(const graph::KnowledgeGraph& g,
                  text::SimilarityEnsemble& ensemble) {
  std::vector<std::string> labels;
  for (graph::NodeId v = 0; v < g.node_count() && labels.size() < 3000; v += 7) {
    labels.emplace_back(g.NodeLabel(v));
  }
  Rng rng(2024);
  const auto pairs = text::GenerateTrainingPairs(labels, 400, rng);
  text::WeightLearner learner;
  const double accuracy = learner.FitAndInstall(ensemble, pairs);
  std::printf("learned ensemble weights on %zu pairs (train acc %.2f)\n",
              pairs.size(), accuracy);
}

}  // namespace

int main(int argc, char** argv) {
  const size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 8000;

  std::printf("generating dbpedia-like graph with %zu nodes...\n", n);
  const auto g = graph::GenerateGraph(graph::DBpediaLike(n));
  std::printf("graph: %zu nodes, %zu edges, %zu types, %zu relations\n",
              g.node_count(), g.edge_count(), g.type_count(),
              g.relation_count());
  const graph::LabelIndex index(g);

  const auto synonyms = text::SynonymDictionary::BuiltIn();
  const auto ontology = text::TypeOntology::BuiltIn();
  text::TfIdfModel tfidf;
  for (graph::NodeId v = 0; v < g.node_count(); ++v) {
    tfidf.AddDocument(g.NodeLabel(v));
  }
  tfidf.Finalize();
  text::SimilarityEnsemble::Context ctx;
  ctx.synonyms = &synonyms;
  ctx.ontology = &ontology;
  ctx.tfidf = &tfidf;
  text::SimilarityEnsemble ensemble(ctx);
  TrainWeights(g, ensemble);

  scoring::MatchConfig match;
  match.d = 2;
  match.node_threshold = 0.45;
  match.max_candidates = 2000;

  query::WorkloadGenerator wg(g, 7);
  query::WorkloadOptions wo;
  wo.variable_fraction = 0.25;
  wo.label_noise = 0.5;

  const size_t k = 10;
  const int num_queries = 5;
  std::printf("\nrunning %d star queries, k=%zu, d=%d\n", num_queries, k,
              match.d);
  for (int i = 0; i < num_queries; ++i) {
    const auto q = wg.RandomStarQuery(3 + i % 3, wo);
    std::printf("\nquery %d: %s\n", i + 1, q.ToString().c_str());

    scoring::QueryScorer scorer(g, q, ensemble, match, &index);
    WallTimer timer;
    core::StarSearch::Options so;
    so.strategy = core::StarStrategy::kStard;
    so.k_hint = k;
    core::StarSearch stard(scorer, core::MakeStarQuery(q), so);
    const auto matches = stard.TopK(k);
    const double stard_ms = timer.ElapsedMillis();

    std::printf("  stard:   %6.1f ms, %zu matches, %zu messages\n", stard_ms,
                matches.size(), stard.stats().messages_sent);
    for (size_t r = 0; r < matches.size() && r < 3; ++r) {
      std::printf("    #%zu score=%.3f pivot=%s\n", r + 1, matches[r].score,
                  std::string(g.NodeLabel(matches[r].pivot)).c_str());
    }

    // The same query through the other engines, same scorer semantics.
    {
      scoring::QueryScorer s2(g, q, ensemble, match, &index);
      core::StarSearch::Options so2;
      so2.strategy = core::StarStrategy::kStark;
      so2.k_hint = k;
      WallTimer t2;
      core::StarSearch stark(s2, core::MakeStarQuery(q), so2);
      const auto m2 = stark.TopK(k);
      std::printf("  stark:   %6.1f ms, %zu matches\n", t2.ElapsedMillis(),
                  m2.size());
    }
    {
      scoring::QueryScorer s3(g, q, ensemble, match, &index);
      WallTimer t3;
      baseline::GraphTa ta(s3);
      const auto m3 = ta.TopK(k);
      std::printf("  graphTA: %6.1f ms, %zu matches, %zu expansions\n",
                  t3.ElapsedMillis(), m3.size(), ta.stats().expansions);
    }
    {
      scoring::QueryScorer s4(g, q, ensemble, match, &index);
      baseline::BpOptions bpo;
      bpo.domain_cap = 200;
      WallTimer t4;
      baseline::BeliefPropagation bp(s4, bpo);
      const auto m4 = bp.TopK(k);
      std::printf("  BP:      %6.1f ms, %zu matches\n", t4.ElapsedMillis(),
                  m4.size());
    }
  }
  return 0;
}
