// Serving-layer demo: stand up a serve::QueryService over a small movie
// graph and show the three behaviors a production front end needs —
// admission-controlled concurrent execution, the normalized-query result
// cache (a reordered-but-identical query hits), and per-request deadlines
// that degrade to partial results instead of unbounded latency.
//
//   $ ./serve_demo

#include <cstdio>
#include <future>
#include <vector>

#include "common/deadline.h"
#include "graph/knowledge_graph.h"
#include "graph/label_index.h"
#include "query/query_graph.h"
#include "serve/query_service.h"
#include "shard/partitioner.h"
#include "text/ensemble.h"

using star::Deadline;
using star::graph::KnowledgeGraph;
using star::graph::LabelIndex;
using star::query::QueryGraph;
using star::serve::QueryRequest;
using star::serve::QueryResponse;
using star::serve::QueryService;
using star::serve::ServiceOptions;
using star::serve::ServiceStats;
using star::text::SimilarityEnsemble;

namespace {

KnowledgeGraph BuildMovieGraph() {
  KnowledgeGraph::Builder b;
  const auto brad_pitt = b.AddNode("Brad Pitt", "Actor");
  const auto brad_garrett = b.AddNode("Brad Garrett", "Actor");
  const auto richard = b.AddNode("Richard Linklater", "Director");
  const auto troy = b.AddNode("Troy", "Film");
  const auto boyhood = b.AddNode("Boyhood", "Film");
  const auto oscar = b.AddNode("Academy Award", "Award");
  const auto globe = b.AddNode("Golden Globe Award", "Award");
  b.AddEdge(brad_pitt, troy, "actedIn");
  b.AddEdge(brad_garrett, troy, "actedIn");
  b.AddEdge(brad_pitt, boyhood, "actedIn");
  b.AddEdge(richard, boyhood, "directed");
  b.AddEdge(boyhood, oscar, "won");
  b.AddEdge(richard, globe, "won");
  b.AddEdge(troy, globe, "nominatedFor");
  return std::move(b).Build();
}

/// "Which movie maker worked with Brad and won an award?" (Figure 1).
QueryGraph BradAwardQuery() {
  QueryGraph q;
  const int brad = q.AddNode("Brad");
  const int maker = q.AddWildcardNode("Director");
  const int award = q.AddNode("Award");
  q.AddEdge(brad, maker);
  q.AddEdge(maker, award);
  return q;
}

/// The same question, nodes/edges added in a different order — e.g. a
/// second client phrasing it bottom-up. Must hit the same cache entry.
QueryGraph BradAwardQueryReordered() {
  QueryGraph q;
  const int award = q.AddNode("Award");
  const int maker = q.AddWildcardNode("Director");
  const int brad = q.AddNode("Brad");
  q.AddEdge(maker, award);
  q.AddEdge(brad, maker);
  return q;
}

void Describe(const char* what, const QueryResponse& r) {
  std::printf("%-28s %-18s matches=%zu cache_hit=%s partial=%s exec=%.2fms\n",
              what, r.status.ToString().c_str(), r.matches.size(),
              r.cache_hit ? "yes" : "no", r.partial ? "yes" : "no", r.exec_ms);
}

}  // namespace

int main() {
  const KnowledgeGraph g = BuildMovieGraph();
  SimilarityEnsemble ensemble;
  LabelIndex index(g);

  ServiceOptions options;
  options.star.match.d = 2;  // awards reachable through a movie
  options.star.match.node_threshold = 0.25;
  options.max_inflight = 2;
  QueryService service(g, ensemble, &index, options);

  std::printf("-- concurrent clients ------------------------------------\n");
  std::vector<std::future<QueryResponse>> inflight;
  for (int i = 0; i < 4; ++i) {
    QueryRequest req;
    req.query = BradAwardQuery();
    req.k = 3;
    inflight.push_back(service.Submit(std::move(req)));
  }
  for (auto& f : inflight) Describe("submit", f.get());

  std::printf("-- normalized-query cache --------------------------------\n");
  QueryRequest reordered;
  reordered.query = BradAwardQueryReordered();
  reordered.k = 3;
  Describe("reordered query", service.Execute(std::move(reordered)));

  std::printf("-- deadlines ---------------------------------------------\n");
  QueryRequest expired;
  expired.query = BradAwardQuery();
  expired.k = 3;
  expired.use_cache = false;
  expired.deadline = Deadline::Expired();
  Describe("already-expired deadline", service.Execute(std::move(expired)));

  const ServiceStats stats = service.stats();
  std::printf("-- service stats -----------------------------------------\n");
  std::printf("submitted=%llu completed=%llu deadline_exceeded=%llu "
              "cache_hit_rate=%.2f\n",
              static_cast<unsigned long long>(stats.submitted),
              static_cast<unsigned long long>(stats.completed),
              static_cast<unsigned long long>(stats.deadline_exceeded),
              stats.cache_hit_rate());

  std::printf("-- sharded backend ---------------------------------------\n");
  ServiceOptions sharded_options = options;
  sharded_options.shards = 2;  // same answers, scatter-gathered
  QueryService sharded(g, ensemble, &index, sharded_options);
  std::printf("%s", star::shard::FormatPartitionReport(
                        sharded.shard_cluster()->partition().stats())
                        .c_str());

  QueryRequest over_shards;
  over_shards.query = BradAwardQuery();
  over_shards.k = 3;
  const QueryResponse sr = sharded.Execute(std::move(over_shards));
  Describe("sharded query", sr);
  const auto& sh = sr.framework.shard;
  std::printf("shards=%zu pulls=%zu scatter_nodes=%zu boundary_pivots=%zu "
              "early_stop_round=%zu coordinator=%.2fms\n",
              sh.shards, sh.total_pulls, sh.scatter_nodes,
              sh.boundary_pivot_hits, sh.early_termination_round,
              sh.coordinator_wall_ms);
  for (size_t s = 0; s < sh.shard_pulls.size(); ++s) {
    std::printf("  shard %zu: pulls=%zu\n", s, sh.shard_pulls[s]);
  }

  QueryRequest again;
  again.query = BradAwardQueryReordered();
  again.k = 3;
  Describe("sharded cache hit", sharded.Execute(std::move(again)));

  const ServiceStats sstats = sharded.stats();
  std::printf("sharded_queries=%llu shard_pulls=%llu boundary_pivot_hits=%llu "
              "coordinator_ms=%.2f\n",
              static_cast<unsigned long long>(sstats.sharded_queries),
              static_cast<unsigned long long>(sstats.shard_pulls),
              static_cast<unsigned long long>(sstats.shard_boundary_pivot_hits),
              sstats.shard_coordinator_ms);
  return 0;
}
