// Quickstart: build a small knowledge graph, pose the paper's Figure-1
// style query, and print the top-k matches.
//
//   $ ./quickstart
//
// Walks through the three public-API layers:
//   1. graph::KnowledgeGraph::Builder  — construct the data graph
//   2. query::QueryGraph               — describe what you search for
//   3. core::StarFramework             — run top-k search

#include <cstdio>

#include "core/explain.h"
#include "core/framework.h"
#include "graph/knowledge_graph.h"
#include "graph/label_index.h"
#include "query/query_graph.h"
#include "text/ensemble.h"

using star::core::GraphMatch;
using star::core::StarFramework;
using star::core::StarOptions;
using star::graph::KnowledgeGraph;
using star::graph::LabelIndex;
using star::query::QueryGraph;
using star::text::SimilarityEnsemble;
using star::text::SynonymDictionary;

namespace {

KnowledgeGraph BuildMovieGraph() {
  KnowledgeGraph::Builder b;
  const auto brad_pitt = b.AddNode("Brad Pitt", "Actor");
  const auto brad_garrett = b.AddNode("Brad Garrett", "Actor");
  const auto richard = b.AddNode("Richard Linklater", "Director");
  const auto troy = b.AddNode("Troy", "Film");
  const auto boyhood = b.AddNode("Boyhood", "Film");
  const auto oscar = b.AddNode("Academy Award", "Award");
  const auto globe = b.AddNode("Golden Globe Award", "Award");
  b.AddEdge(brad_pitt, troy, "actedIn");
  b.AddEdge(brad_garrett, troy, "actedIn");
  b.AddEdge(brad_pitt, boyhood, "actedIn");
  b.AddEdge(richard, boyhood, "directed");
  b.AddEdge(boyhood, oscar, "won");
  b.AddEdge(richard, globe, "won");
  b.AddEdge(troy, globe, "nominatedFor");
  return std::move(b).Build();
}

void PrintMatches(const KnowledgeGraph& g, const QueryGraph& q,
                  const std::vector<GraphMatch>& matches) {
  for (size_t rank = 0; rank < matches.size(); ++rank) {
    std::printf("  #%zu  score=%.3f  ", rank + 1, matches[rank].score);
    for (int u = 0; u < q.node_count(); ++u) {
      const auto v = matches[rank].mapping[u];
      const std::string vl = v == star::graph::kInvalidNode
                                 ? "(unmapped)"
                                 : std::string(g.NodeLabel(v));
      std::printf("%s%s -> %s", u > 0 ? ", " : "",
                  q.node(u).wildcard ? "?" : q.node(u).label.c_str(),
                  vl.c_str());
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  const KnowledgeGraph g = BuildMovieGraph();
  const LabelIndex index(g);

  // The matching function (Eq. 1): string measures + a synonym thesaurus,
  // so "movie maker" can match a node typed Director.
  const SynonymDictionary synonyms = SynonymDictionary::BuiltIn();
  SimilarityEnsemble::Context ctx;
  ctx.synonyms = &synonyms;
  const SimilarityEnsemble ensemble(ctx);

  StarOptions options;
  options.match.d = 2;          // edges may match paths up to 2 hops
  options.match.lambda = 0.5;   // geometric path decay
  options.match.node_threshold = 0.3;

  StarFramework framework(g, ensemble, &index, options);

  // --- Query 1: the Figure-1 query --------------------------------------
  // "movie makers who worked with Brad and won awards": a 3-node path,
  // where (maker -- award) may be satisfied through an intermediate movie.
  QueryGraph q1;
  const int brad = q1.AddNode("Brad");
  const int maker = q1.AddWildcardNode("Director");
  const int award = q1.AddNode("Award");
  q1.AddEdge(brad, maker);
  q1.AddEdge(maker, award);

  std::printf("Query 1 (%s):\n", q1.ToString().c_str());
  PrintMatches(g, q1, framework.TopK(q1, 3));

  // --- Query 2: a pure star query ---------------------------------------
  QueryGraph q2;
  const int film = q2.AddWildcardNode("Film");
  q2.AddEdge(film, q2.AddNode("Brad Pitt"), "actedIn");
  q2.AddEdge(film, q2.AddNode("Academy Award"), "won");

  std::printf("\nQuery 2 (%s):\n", q2.ToString().c_str());
  PrintMatches(g, q2, framework.TopK(q2, 3));

  // --- Query 3: approximate labels --------------------------------------
  // Typos and partial names are resolved by the similarity ensemble.
  QueryGraph q3;
  const int a = q3.AddNode("Bradd Pit");
  const int b = q3.AddNode("Troya");
  q3.AddEdge(a, b);

  std::printf("\nQuery 3 (%s):\n", q3.ToString().c_str());
  PrintMatches(g, q3, framework.TopK(q3, 2));

  // --- Why did query 1's best match win? ---------------------------------
  // core/explain.h reconstructs the score breakdown, including the
  // intermediate node that realizes the 2-hop (maker -- award) edge.
  const auto top1 = framework.TopK(q1, 1);
  if (!top1.empty()) {
    star::scoring::QueryScorer scorer(g, q1, ensemble, options.match, &index);
    const auto explanation = star::core::ExplainMatch(scorer, top1[0]);
    if (explanation.ok()) {
      std::printf("\nExplanation of query 1's top match:\n%s",
                  star::core::FormatExplanation(scorer, *explanation).c_str());
    }
  }
  return 0;
}
