// star_fuzz: oracle-backed differential & metamorphic fuzzer for the STAR
// engine. Four modes:
//
//   fuzz (default)        run --cases seeded random cases through the full
//                         differential matrix; shrink failures and write
//                         self-contained .replay files to --out-dir.
//   --replay FILE...      re-execute replay files. Files with an injected
//                         bug are canaries: they pass when the harness
//                         flags the bug (check reuse-warm) and nothing else.
//   --inject-bug KIND     prove the harness catches a planted bug end to
//                         end: fuzz until first catch, shrink, write a
//                         replay, reload it, and verify it still trips.
//   --emit FILE           write the replay for (--profile, --seed) without
//                         running it (corpus generation).
//
// Exit code: 0 clean, 1 violations (or a canary that failed to trip),
// 2 usage / IO errors.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "testing/differential.h"
#include "testing/fuzz_case.h"
#include "testing/replay.h"
#include "testing/shrinker.h"

namespace {

using star::testing::BugInjection;
using star::testing::CaseOutcome;
using star::testing::FuzzCase;
using star::testing::FuzzProfile;
using star::testing::MakeFuzzCase;
using star::testing::RunDifferentialCase;
using star::testing::RunnerOptions;
using star::testing::ShrinkCase;
using star::testing::ShrinkOptions;
using star::testing::Violation;

struct Args {
  std::string profile = "smoke";
  size_t cases = 500;
  uint64_t seed = 1;
  std::string out_dir = ".";
  std::string inject_bug;           // "", "toplist", "candidates"
  std::string emit_path;            // --emit FILE
  std::vector<std::string> replays; // --replay FILE...
  bool shrink = true;
  double max_oracle_states = 4e6;
};

void Usage() {
  std::fprintf(stderr,
               "usage: star_fuzz [--profile "
               "smoke|ties|tiecut|deadline|overload] [--cases N]\n"
               "                 [--seed S] [--out-dir DIR] [--no-shrink]\n"
               "                 [--max-oracle-states X]\n"
               "                 [--inject-bug toplist|candidates]\n"
               "                 [--emit FILE] [--replay FILE ...]\n");
}

bool ParseArgs(int argc, char** argv, Args* a) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&](std::string* out) {
      if (i + 1 >= argc) return false;
      *out = argv[++i];
      return true;
    };
    std::string v;
    if (arg == "--profile" && next(&v)) {
      a->profile = v;
    } else if (arg == "--cases" && next(&v)) {
      a->cases = std::strtoull(v.c_str(), nullptr, 10);
    } else if (arg == "--seed" && next(&v)) {
      a->seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (arg == "--out-dir" && next(&v)) {
      a->out_dir = v;
    } else if (arg == "--inject-bug" && next(&v)) {
      a->inject_bug = v;
    } else if (arg == "--emit" && next(&v)) {
      a->emit_path = v;
    } else if (arg == "--replay" && next(&v)) {
      a->replays.push_back(v);
    } else if (arg == "--no-shrink") {
      a->shrink = false;
    } else if (arg == "--max-oracle-states" && next(&v)) {
      a->max_oracle_states = std::strtod(v.c_str(), nullptr);
    } else {
      std::fprintf(stderr, "star_fuzz: bad argument '%s'\n", arg.c_str());
      return false;
    }
  }
  return true;
}

BugInjection InjectionFromFlag(const std::string& flag) {
  if (flag == "toplist") return BugInjection::kWarmTopListScores;
  if (flag == "candidates") return BugInjection::kWarmCandidateScores;
  return BugInjection::kNone;
}

bool HasCheck(const CaseOutcome& o, const std::string& check) {
  for (const auto& v : o.violations) {
    if (v.check == check) return true;
  }
  return false;
}

/// Canary pass = the injected bug tripped its check and nothing else broke.
bool CanaryOk(const CaseOutcome& o) {
  bool caught = false;
  for (const auto& v : o.violations) {
    if (v.check != "reuse-warm") return false;
    caught = true;
  }
  return caught;
}

std::string WriteShrunkReplay(const FuzzCase& c, const std::string& check,
                              const Args& args) {
  FuzzCase minimal = star::testing::CopyCase(c);
  if (args.shrink) {
    ShrinkOptions so;
    so.runner.max_oracle_states = args.max_oracle_states;
    const auto r = ShrinkCase(c, check, so);
    std::printf("  shrink: %zu attempts, %zu reductions -> %s\n", r.attempts,
                r.reductions, r.minimal.Describe().c_str());
    minimal = star::testing::CopyCase(r.minimal);
  }
  const std::string path = args.out_dir + "/case-" + std::to_string(c.seed) +
                           "-" + check + ".replay";
  if (!star::testing::WriteReplayFile(path, minimal)) {
    std::fprintf(stderr, "star_fuzz: cannot write %s\n", path.c_str());
    return "";
  }
  std::printf("  replay written: %s\n", path.c_str());
  return path;
}

int RunReplays(const Args& args) {
  RunnerOptions opts;
  opts.max_oracle_states = args.max_oracle_states;
  int failures = 0;
  for (const auto& path : args.replays) {
    FuzzCase c;
    std::string err;
    if (!star::testing::LoadReplayFile(path, &c, &err)) {
      std::fprintf(stderr, "star_fuzz: %s: %s\n", path.c_str(), err.c_str());
      return 2;
    }
    const CaseOutcome o = RunDifferentialCase(c, opts);
    if (c.inject != BugInjection::kNone) {
      if (CanaryOk(o)) {
        std::printf("canary ok  %s (%s)\n", path.c_str(),
                    c.Describe().c_str());
      } else {
        std::printf("CANARY FAILED  %s: %s\n", path.c_str(),
                    o.ok() ? "injected bug not detected"
                           : o.Summary().c_str());
        ++failures;
      }
      continue;
    }
    if (o.ok()) {
      std::printf("ok  %s (%zu cells)\n", path.c_str(), o.cells_run);
    } else {
      std::printf("FAIL  %s: %s\n", path.c_str(), o.Summary().c_str());
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

int RunCanary(const Args& args) {
  const BugInjection inject = InjectionFromFlag(args.inject_bug);
  if (inject == BugInjection::kNone) {
    std::fprintf(stderr, "star_fuzz: --inject-bug wants toplist|candidates\n");
    return 2;
  }
  const FuzzProfile profile = star::testing::ProfileByName(args.profile);
  RunnerOptions opts;
  opts.max_oracle_states = args.max_oracle_states;
  for (size_t i = 0; i < args.cases; ++i) {
    FuzzCase c = MakeFuzzCase(profile, args.seed + i);
    c.inject = inject;
    const CaseOutcome o = RunDifferentialCase(c, opts);
    if (!HasCheck(o, "reuse-warm")) continue;
    std::printf("injected bug caught on seed %llu: %s\n",
                static_cast<unsigned long long>(c.seed),
                o.Summary().c_str());
    const std::string path = WriteShrunkReplay(c, "reuse-warm", args);
    if (path.empty()) return 2;
    // The proof is only complete if the written file reproduces the catch
    // by itself.
    FuzzCase reloaded;
    std::string err;
    if (!star::testing::LoadReplayFile(path, &reloaded, &err)) {
      std::fprintf(stderr, "star_fuzz: reload failed: %s\n", err.c_str());
      return 2;
    }
    const CaseOutcome replayed = RunDifferentialCase(reloaded, opts);
    if (!HasCheck(replayed, "reuse-warm")) {
      std::printf("CANARY FAILED: replay did not reproduce the catch\n");
      return 1;
    }
    std::printf("canary ok: replay reproduces deterministically\n");
    return 0;
  }
  std::printf("CANARY FAILED: injected bug never detected in %zu cases\n",
              args.cases);
  return 1;
}

int RunEmit(const Args& args) {
  const FuzzProfile profile = star::testing::ProfileByName(args.profile);
  FuzzCase c = MakeFuzzCase(profile, args.seed);
  c.inject = InjectionFromFlag(args.inject_bug);
  if (!star::testing::WriteReplayFile(args.emit_path, c)) {
    std::fprintf(stderr, "star_fuzz: cannot write %s\n",
                 args.emit_path.c_str());
    return 2;
  }
  std::printf("emitted %s (%s)\n", args.emit_path.c_str(),
              c.Describe().c_str());
  return 0;
}

int RunFuzz(const Args& args) {
  const FuzzProfile profile = star::testing::ProfileByName(args.profile);
  RunnerOptions opts;
  opts.max_oracle_states = args.max_oracle_states;
  size_t failed = 0, cells = 0, oracle_cases = 0;
  const auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < args.cases; ++i) {
    const FuzzCase c = MakeFuzzCase(profile, args.seed + i);
    const CaseOutcome o = RunDifferentialCase(c, opts);
    cells += o.cells_run;
    if (o.oracle_ran) ++oracle_cases;
    if (!o.ok()) {
      ++failed;
      std::printf("FAIL seed=%llu %s\n  %s\n",
                  static_cast<unsigned long long>(c.seed),
                  c.Describe().c_str(), o.Summary().c_str());
      WriteShrunkReplay(c, o.violations.front().check, args);
    }
    if ((i + 1) % 100 == 0) {
      std::printf("... %zu/%zu cases, %zu failed\n", i + 1, args.cases,
                  failed);
    }
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::printf(
      "profile=%s cases=%zu failed=%zu cells=%zu oracle_cases=%zu "
      "elapsed=%.2fs rate=%.1f cases/s\n",
      profile.name.c_str(), args.cases, failed, cells, oracle_cases, secs,
      args.cases / (secs > 0 ? secs : 1e-9));
  return failed == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    Usage();
    return 2;
  }
  if (!args.emit_path.empty()) return RunEmit(args);
  if (!args.replays.empty()) return RunReplays(args);
  if (!args.inject_bug.empty()) return RunCanary(args);
  return RunFuzz(args);
}
